#include "quant/half.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace ulayer {
namespace {

TEST(HalfTest, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(Half(static_cast<float>(i)).ToFloat(), static_cast<float>(i)) << i;
  }
}

TEST(HalfTest, KnownBitPatterns) {
  EXPECT_EQ(Half(0.0f).bits(), 0x0000);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
  EXPECT_EQ(Half(1.0f).bits(), 0x3c00);
  EXPECT_EQ(Half(-1.0f).bits(), 0xbc00);
  EXPECT_EQ(Half(2.0f).bits(), 0x4000);
  EXPECT_EQ(Half(0.5f).bits(), 0x3800);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7bff);  // Largest finite half.
}

TEST(HalfTest, OverflowSaturatesToInfinity) {
  EXPECT_EQ(Half(65536.0f).bits(), 0x7c00);
  EXPECT_EQ(Half(-65536.0f).bits(), 0xfc00);
  EXPECT_EQ(Half(1e30f).bits(), 0x7c00);
  // 65520 rounds up to infinity (nearest even at the boundary).
  EXPECT_EQ(Half(65520.0f).bits(), 0x7c00);
  // 65519 rounds down to 65504.
  EXPECT_EQ(Half(65519.0f).bits(), 0x7bff);
}

TEST(HalfTest, InfinityAndNanPropagate) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(Half(inf).bits(), 0x7c00);
  EXPECT_EQ(Half(-inf).bits(), 0xfc00);
  EXPECT_TRUE(std::isinf(Half(inf).ToFloat()));
  EXPECT_TRUE(std::isnan(Half(std::nanf("")).ToFloat()));
}

TEST(HalfTest, SubnormalsRoundTrip) {
  // Smallest positive subnormal: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(Half(tiny).bits(), 0x0001);
  EXPECT_EQ(Half(tiny).ToFloat(), tiny);
  // Largest subnormal: (1023/1024) * 2^-14.
  const float big_sub = 1023.0f / 1024.0f * std::ldexp(1.0f, -14);
  EXPECT_EQ(Half(big_sub).bits(), 0x03ff);
  EXPECT_EQ(Half(big_sub).ToFloat(), big_sub);
  // Smallest normal: 2^-14.
  EXPECT_EQ(Half(std::ldexp(1.0f, -14)).bits(), 0x0400);
}

TEST(HalfTest, BelowHalfSmallestSubnormalRoundsToZero) {
  const float below = std::ldexp(1.0f, -26);
  EXPECT_EQ(Half(below).bits(), 0x0000);
  EXPECT_EQ(Half(-below).bits(), 0x8000);
}

TEST(HalfTest, RoundToNearestEven) {
  // 1 + 2^-11 lies exactly between 1.0 and the next half (1 + 2^-10);
  // ties-to-even picks 1.0 (even mantissa).
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00);
  // (1 + 2^-10) + 2^-11 lies between two halves with an odd lower mantissa;
  // ties-to-even rounds up.
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -10) + std::ldexp(1.0f, -11)).bits(), 0x3c02);
  // Slightly above the midpoint always rounds up.
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -14)).bits(), 0x3c01);
}

TEST(HalfTest, RoundTripAllFiniteBitPatterns) {
  // Property: every finite half converts to float and back bit-exactly.
  for (uint32_t b = 0; b <= 0xffff; ++b) {
    const uint16_t bits = static_cast<uint16_t>(b);
    const uint16_t exp = (bits >> 10) & 0x1f;
    if (exp == 0x1f) {
      continue;  // Inf/NaN payloads round-trip by class, not bit pattern.
    }
    const Half h = Half::FromBits(bits);
    const Half back(h.ToFloat());
    // -0.0 and +0.0 keep their signs.
    EXPECT_EQ(back.bits(), bits) << "bits=0x" << std::hex << bits;
  }
}

TEST(HalfTest, ArithmeticRoundsPerOperation) {
  // 2048 + 1 is not representable (gap is 2 at that magnitude): result
  // rounds back to 2048 — classic F16 accumulation behaviour.
  const Half a(2048.0f);
  const Half one(1.0f);
  EXPECT_EQ((a + one).ToFloat(), 2048.0f);
  // With F32 arithmetic this would be 2049.
}

TEST(HalfTest, BasicArithmetic) {
  EXPECT_FLOAT_EQ((Half(1.5f) + Half(2.25f)).ToFloat(), 3.75f);
  EXPECT_FLOAT_EQ((Half(3.0f) * Half(0.5f)).ToFloat(), 1.5f);
  EXPECT_FLOAT_EQ((Half(1.0f) / Half(4.0f)).ToFloat(), 0.25f);
  EXPECT_FLOAT_EQ((Half(1.0f) - Half(3.0f)).ToFloat(), -2.0f);
  EXPECT_TRUE(Half(-1.0f) < Half(1.0f));
}

TEST(HalfTest, QuarterPrecisionIsLost) {
  // 0.1 is inexact in binary16: |half(0.1) - 0.1| within the 2^-11 relative
  // error bound of the format.
  const float v = Half(0.1f).ToFloat();
  EXPECT_NE(v, 0.1f);
  EXPECT_NEAR(v, 0.1f, 0.1f * (1.0f / 1024.0f));
}

}  // namespace
}  // namespace ulayer
