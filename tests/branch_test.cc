#include "nn/branch.h"

#include <gtest/gtest.h>

#include "models/model.h"

namespace ulayer {
namespace {

TEST(BranchTest, LinearChainHasNoBranches) {
  Graph g;
  int x = g.AddInput(Shape(1, 3, 32, 32));
  x = g.AddConv("c1", x, 8, 3, 1, 1, true);
  x = g.AddConv("c2", x, 8, 3, 1, 1, true);
  g.AddSoftmax("sm", x);
  EXPECT_FALSE(HasBranches(g));
  EXPECT_TRUE(FindBranchGroups(g).empty());
}

TEST(BranchTest, DetectsInceptionStyleGroup) {
  Graph g;
  const int in = g.AddInput(Shape(1, 192, 28, 28));
  const int b0 = g.AddConv("1x1", in, 64, 1, 1, 0, true);
  const int b1r = g.AddConv("3x3r", in, 96, 1, 1, 0, true);
  const int b1 = g.AddConv("3x3", b1r, 128, 3, 1, 1, true);
  const int b2r = g.AddConv("5x5r", in, 16, 1, 1, 0, true);
  const int b2 = g.AddConv("5x5", b2r, 32, 5, 1, 2, true);
  const int b3p = g.AddPool("pool", in, PoolKind::kMax, 3, 1, 1);
  const int b3 = g.AddConv("proj", b3p, 32, 1, 1, 0, true);
  const int join = g.AddConcat("out", {b0, b1, b2, b3});

  const auto groups = FindBranchGroups(g);
  ASSERT_EQ(groups.size(), 1u);
  const BranchGroup& bg = groups[0];
  EXPECT_EQ(bg.fork, in);
  EXPECT_EQ(bg.join, join);
  ASSERT_EQ(bg.branches.size(), 4u);
  EXPECT_EQ(bg.branches[0], std::vector<int>{b0});
  EXPECT_EQ(bg.branches[1], (std::vector<int>{b1r, b1}));
  EXPECT_EQ(bg.branches[2], (std::vector<int>{b2r, b2}));
  EXPECT_EQ(bg.branches[3], (std::vector<int>{b3p, b3}));
}

TEST(BranchTest, DetectsFireStyleGroup) {
  Graph g;
  const int in = g.AddInput(Shape(1, 64, 56, 56));
  const int sq = g.AddConv("squeeze", in, 16, 1, 1, 0, true);
  const int e1 = g.AddConv("e1x1", sq, 64, 1, 1, 0, true);
  const int e3 = g.AddConv("e3x3", sq, 64, 3, 1, 1, true);
  const int join = g.AddConcat("cat", {e1, e3});
  const auto groups = FindBranchGroups(g);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].fork, sq);
  EXPECT_EQ(groups[0].join, join);
  EXPECT_EQ(groups[0].branches.size(), 2u);
}

TEST(BranchTest, RejectsConcatWithMismatchedForks) {
  // Two concat inputs tracing to *different* forks do not form a group.
  Graph g;
  const int in = g.AddInput(Shape(1, 8, 14, 14));
  const int a = g.AddConv("a", in, 8, 1, 1, 0, true);   // fork 1: in
  const int a1 = g.AddConv("a1", a, 8, 1, 1, 0, true);  // consumer 1 of a
  const int a2 = g.AddConv("a2", a, 8, 1, 1, 0, true);  // consumer 2 of a
  const int b = g.AddConv("b", in, 8, 1, 1, 0, true);   // also consumes in
  g.AddConcat("cat", {a1, a2, b});
  // a1/a2 trace to fork `a`; b traces to fork `in`: mismatched -> no group.
  const auto groups = FindBranchGroups(g);
  EXPECT_TRUE(groups.empty());
  (void)b;
}

TEST(BranchTest, GoogLeNetHasNineInceptionGroups) {
  const Model m = MakeGoogLeNet();
  const auto groups = FindBranchGroups(m.graph);
  EXPECT_EQ(groups.size(), 9u);
  for (const BranchGroup& bg : groups) {
    EXPECT_EQ(bg.branches.size(), 4u);
  }
  EXPECT_TRUE(HasBranches(m.graph));
}

TEST(BranchTest, SqueezeNetHasEightFireGroups) {
  const Model m = MakeSqueezeNetV11();
  const auto groups = FindBranchGroups(m.graph);
  EXPECT_EQ(groups.size(), 8u);
  for (const BranchGroup& bg : groups) {
    EXPECT_EQ(bg.branches.size(), 2u);
  }
}

TEST(BranchTest, NonBranchyEvaluationModelsHaveNone) {
  EXPECT_FALSE(HasBranches(MakeVgg16().graph));
  EXPECT_FALSE(HasBranches(MakeAlexNet().graph));
  EXPECT_FALSE(HasBranches(MakeMobileNetV1().graph));
  EXPECT_FALSE(HasBranches(MakeLeNet5().graph));
}


TEST(BranchTest, DetectsResNetResidualWithIdentityShortcut) {
  Graph g;
  const int in = g.AddInput(Shape(1, 64, 28, 28));
  // `fork` must have >1 consumers; give it a conv before the block.
  const int fork = g.AddConv("pre", in, 64, 1, 1, 0, true);
  const int c1 = g.AddConv("c1", fork, 64, 3, 1, 1, true);
  const int c2 = g.AddConv("c2", c1, 64, 3, 1, 1, false);
  const int add = g.AddEltwiseAdd("add", {c2, fork}, true);
  const auto groups = FindBranchGroups(g);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].fork, fork);
  EXPECT_EQ(groups[0].join, add);
  ASSERT_EQ(groups[0].branches.size(), 2u);
  EXPECT_EQ(groups[0].branches[0], (std::vector<int>{c1, c2}));
  EXPECT_TRUE(groups[0].branches[1].empty()) << "identity shortcut = empty branch";
}

TEST(BranchTest, DetectsResNetProjectionShortcut) {
  Graph g;
  const int in = g.AddInput(Shape(1, 64, 28, 28));
  const int fork = g.AddConv("pre", in, 64, 1, 1, 0, true);
  const int c1 = g.AddConv("c1", fork, 128, 3, 2, 1, true);
  const int c2 = g.AddConv("c2", c1, 128, 3, 1, 1, false);
  const int proj = g.AddConv("proj", fork, 128, 1, 2, 0, false);
  g.AddEltwiseAdd("add", {c2, proj}, true);
  const auto groups = FindBranchGroups(g);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].branches.size(), 2u);
  EXPECT_FALSE(groups[0].branches[0].empty());
  EXPECT_EQ(groups[0].branches[1], std::vector<int>{proj});
}

TEST(BranchTest, ResNet18HasEightResidualGroups) {
  const Model m = MakeResNet18();
  EXPECT_EQ(FindBranchGroups(m.graph).size(), 8u);
}

TEST(BranchTest, ResNet50HasSixteenResidualGroups) {
  const Model m = MakeResNet50();
  EXPECT_EQ(FindBranchGroups(m.graph).size(), 16u);
}

}  // namespace
}  // namespace ulayer
