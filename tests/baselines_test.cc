#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include "core/runtime.h"

namespace ulayer {
namespace {

TEST(BaselinesTest, SingleProcessorPlanAssignsEverythingToOneDevice) {
  const Model m = MakeAlexNet();
  const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kGpu);
  for (const NodeAssignment& a : plan.nodes) {
    EXPECT_EQ(a.kind, StepKind::kSingle);
    EXPECT_EQ(a.proc, ProcKind::kGpu);
  }
}

TEST(BaselinesTest, LayerToProcessorNeverSlowerThanWorstSingle) {
  for (const Model& m : MakeEvaluationModels()) {
    const SocSpec soc = MakeExynos7420();
    const ExecConfig cfg = ExecConfig::AllQU8();
    const double cpu = RunSingleProcessor(m, soc, ProcKind::kCpu, cfg).latency_us;
    const double gpu = RunSingleProcessor(m, soc, ProcKind::kGpu, cfg).latency_us;
    const double l2p = RunLayerToProcessor(m, soc, cfg).latency_us;
    EXPECT_LT(l2p, std::max(cpu, gpu) * 1.05) << m.name;
  }
}

TEST(BaselinesTest, QU8FasterThanF32OnCpu) {
  const Model m = MakeVgg16();
  const SocSpec soc = MakeExynos7420();
  const double f32 = RunSingleProcessor(m, soc, ProcKind::kCpu, ExecConfig::AllF32()).latency_us;
  const double qu8 = RunSingleProcessor(m, soc, ProcKind::kCpu, ExecConfig::AllQU8()).latency_us;
  EXPECT_LT(qu8, f32 * 0.6) << "QUInt8 should give the CPU a large speedup (Figure 8)";
}

TEST(BaselinesTest, F16FasterThanF32OnGpuButNotCpu) {
  const Model m = MakeVgg16();
  const SocSpec soc = MakeExynos7420();
  const double gpu_f32 =
      RunSingleProcessor(m, soc, ProcKind::kGpu, ExecConfig::AllF32()).latency_us;
  const double gpu_f16 =
      RunSingleProcessor(m, soc, ProcKind::kGpu, ExecConfig::AllF16()).latency_us;
  EXPECT_LT(gpu_f16, gpu_f32 * 0.85);
  const double cpu_f32 =
      RunSingleProcessor(m, soc, ProcKind::kCpu, ExecConfig::AllF32()).latency_us;
  const double cpu_f16 =
      RunSingleProcessor(m, soc, ProcKind::kCpu, ExecConfig::AllF16()).latency_us;
  // The CPU emulates F16 via F32 (no native vector F16): compute time equal,
  // only memory traffic shrinks.
  EXPECT_LT(cpu_f16, cpu_f32);
  EXPECT_GT(cpu_f16, cpu_f32 * 0.5);
}

TEST(BaselinesTest, NetworkToProcessorImprovesThroughputNotLatency) {
  const Model m = MakeAlexNet();
  const SocSpec soc = MakeExynos7420();
  const ExecConfig cfg = ExecConfig::AllF32();
  const ThroughputResult r = RunNetworkToProcessor(m, soc, cfg, 8);
  EXPECT_EQ(r.cpu_inputs + r.gpu_inputs, 8);
  EXPECT_GT(r.cpu_inputs, 0);
  EXPECT_GT(r.gpu_inputs, 0);
  // Per-input time beats the single-processor latency (throughput win)...
  EXPECT_LT(r.per_input_us, r.first_input_us);
  // ...but the single-input latency is unchanged (Figure 4a's limitation).
  const double best_single =
      std::min(RunSingleProcessor(m, soc, ProcKind::kCpu, cfg).latency_us,
               RunSingleProcessor(m, soc, ProcKind::kGpu, cfg).latency_us);
  EXPECT_DOUBLE_EQ(r.first_input_us, best_single);
}

TEST(BaselinesTest, ULayerBeatsLayerToProcessorOnAllEvaluationNNs) {
  // The headline claim (Figure 16): ulayer (channel + proc-friendly + branch)
  // is faster than the state-of-the-art layer-to-processor mapping on every
  // NN and both SoCs.
  for (const bool high_end : {true, false}) {
    const SocSpec soc = high_end ? MakeExynos7420() : MakeExynos7880();
    for (const Model& m : MakeEvaluationModels()) {
      const double l2p = RunLayerToProcessor(m, soc, ExecConfig::AllQU8()).latency_us;
      ULayerRuntime rt(m, soc);
      const double ul = rt.Run().latency_us;
      EXPECT_LT(ul, l2p) << m.name << " on " << soc.name;
    }
  }
}

}  // namespace
}  // namespace ulayer
