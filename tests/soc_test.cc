#include "soc/spec.h"

#include <gtest/gtest.h>

#include "models/model.h"
#include "soc/timing.h"
#include "soc/work.h"

namespace ulayer {
namespace {

TEST(SpecTest, PresetsEncodeThePapersBalances) {
  const SocSpec he = MakeExynos7420();
  // High-end: GPU ~1.40x the CPU at F32 (paper Figure 5a).
  EXPECT_NEAR(he.gpu.gmacs_f32 / he.cpu.gmacs_f32, 1.40, 0.05);
  // CPU gains from QUInt8, not from F16 (Figure 8).
  EXPECT_GT(he.cpu.gmacs_qu8, 2.0 * he.cpu.gmacs_f32);
  EXPECT_DOUBLE_EQ(he.cpu.gmacs_f16, he.cpu.gmacs_f32);
  // GPU gains from F16; QUInt8 is worse than F16 on the GPU.
  EXPECT_GT(he.gpu.gmacs_f16, 1.3 * he.gpu.gmacs_f32);
  EXPECT_LT(he.gpu.gmacs_qu8, he.gpu.gmacs_f16);

  const SocSpec mr = MakeExynos7880();
  // Mid-range: the CPU beats the GPU at F32 (Figure 5b: 26.1% lower latency).
  EXPECT_LT(mr.gpu.gmacs_f32, mr.cpu.gmacs_f32);
  EXPECT_NEAR(mr.gpu.gmacs_f32 / mr.cpu.gmacs_f32, 0.74, 0.05);
}

TEST(WorkTest, ConvWorkCountsMacsAndSharedInput) {
  Graph g;
  const int in = g.AddInput(Shape(1, 16, 28, 28));
  const int c = g.AddConv("c", in, 32, 3, 1, 1, true);
  const LayerWork full = ComputeWork(g, g.node(c), DType::kF32);
  // MACs = oc*oh*ow*ic*k*k = 32*28*28*16*9.
  EXPECT_DOUBLE_EQ(full.macs, 32.0 * 28 * 28 * 16 * 9);
  EXPECT_DOUBLE_EQ(full.input_bytes, 16.0 * 28 * 28 * 4);
  EXPECT_DOUBLE_EQ(full.weight_bytes, 32.0 * 16 * 9 * 4);
  EXPECT_DOUBLE_EQ(full.output_bytes, 32.0 * 28 * 28 * 4);

  // Half the channels: half the MACs/weights/outputs but the FULL input
  // (filters extend through all input channels, Figure 7a).
  const LayerWork half = ComputeWork(g, g.node(c), DType::kF32, 0, 16);
  EXPECT_DOUBLE_EQ(half.macs, full.macs / 2);
  EXPECT_DOUBLE_EQ(half.weight_bytes, full.weight_bytes / 2);
  EXPECT_DOUBLE_EQ(half.output_bytes, full.output_bytes / 2);
  EXPECT_DOUBLE_EQ(half.input_bytes, full.input_bytes);
}

TEST(WorkTest, PoolSliceScalesInputToo) {
  Graph g;
  const int in = g.AddInput(Shape(1, 16, 28, 28));
  const int p = g.AddPool("p", in, PoolKind::kMax, 2, 2);
  const LayerWork full = ComputeWork(g, g.node(p), DType::kF32);
  const LayerWork half = ComputeWork(g, g.node(p), DType::kF32, 0, 8);
  // Pooling distributes the input channel-wise (Figure 7b).
  EXPECT_DOUBLE_EQ(half.input_bytes, full.input_bytes / 2);
  EXPECT_DOUBLE_EQ(half.macs, full.macs / 2);
}

TEST(WorkTest, QU8StorageQuartersTraffic) {
  Graph g;
  const int in = g.AddInput(Shape(1, 16, 28, 28));
  const int c = g.AddConv("c", in, 32, 3, 1, 1, true);
  const LayerWork f32 = ComputeWork(g, g.node(c), DType::kF32);
  const LayerWork u8 = ComputeWork(g, g.node(c), DType::kQUInt8);
  EXPECT_DOUBLE_EQ(u8.TotalBytes() * 4.0, f32.TotalBytes());
  EXPECT_DOUBLE_EQ(u8.macs, f32.macs);  // Same arithmetic.
}

TEST(WorkTest, TotalMacsMatchesLayerSum) {
  const Model m = MakeLeNet5();
  double sum = 0.0;
  for (const Node& n : m.graph.nodes()) {
    sum += ComputeWork(m.graph, n, DType::kF32).macs;
  }
  EXPECT_DOUBLE_EQ(TotalMacs(m.graph), sum);
  EXPECT_GT(sum, 0.0);
}

TEST(TimingTest, LatencyIsLaunchPlusComputePlusMemory) {
  const SocSpec soc = MakeExynos7420();
  const TimingModel tm(soc);
  LayerWork w;
  w.macs = 18e6;          // 1 ms of compute at 18 GMAC/s.
  w.input_bytes = 8e6;    // 1 ms of memory at 8 GB/s.
  const double t = tm.KernelLatencyUs(w, ProcKind::kCpu, DType::kF32);
  EXPECT_NEAR(t, soc.cpu.kernel_launch_us + 1000.0 + 1000.0, 1e-6);
  EXPECT_NEAR(tm.KernelBodyUs(w, ProcKind::kCpu, DType::kF32), 2000.0, 1e-6);
}

TEST(TimingTest, ComputeDtypeSelectsThroughput) {
  const SocSpec soc = MakeExynos7420();
  const TimingModel tm(soc);
  LayerWork w;
  w.macs = 1e9;
  const double f32 = tm.KernelBodyUs(w, ProcKind::kCpu, DType::kF32);
  const double qu8 = tm.KernelBodyUs(w, ProcKind::kCpu, DType::kQUInt8);
  EXPECT_NEAR(f32 / qu8, soc.cpu.gmacs_qu8 / soc.cpu.gmacs_f32, 1e-9);
}

TEST(EnergyTest, EnergyScalesWithTimeAndBytes) {
  const SocSpec soc = MakeExynos7420();
  const EnergyModel em(soc);
  // 1 second of CPU F32 compute = active watts in joules = 1000x in mJ.
  EXPECT_NEAR(em.ComputeEnergyMj(ProcKind::kCpu, DType::kF32, 1e6, 0.0),
              soc.cpu.active_w_f32 * 1000.0, 1e-6);
  // 1 GB of DRAM traffic at dram_nj_per_byte.
  EXPECT_NEAR(em.DramEnergyMj(1e9), soc.dram_nj_per_byte * 1000.0, 1e-6);
  EXPECT_NEAR(em.IdleEnergyMj(1e6), soc.idle_w * 1000.0, 1e-6);
}

TEST(TimingTest, PaperVgg16CpuGpuRatioEmerges) {
  // Summing per-layer latency of VGG-16 conv layers must reproduce the ~1.4x
  // GPU advantage on the high-end SoC and the CPU advantage on the mid-range
  // (paper Figures 5 and 6) from first principles of the model.
  const Model vgg = MakeVgg16();
  for (const bool high_end : {true, false}) {
    const SocSpec soc = high_end ? MakeExynos7420() : MakeExynos7880();
    const TimingModel tm(soc);
    double cpu_total = 0.0, gpu_total = 0.0;
    for (const Node& n : vgg.graph.nodes()) {
      const LayerWork w = ComputeWork(vgg.graph, n, DType::kF32);
      cpu_total += tm.KernelLatencyUs(w, ProcKind::kCpu, DType::kF32);
      gpu_total += tm.KernelLatencyUs(w, ProcKind::kGpu, DType::kF32);
    }
    if (high_end) {
      EXPECT_LT(gpu_total, cpu_total);
    } else {
      EXPECT_LT(cpu_total, gpu_total);
    }
  }
}

}  // namespace
}  // namespace ulayer
