#include "kernels/gemm.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/pack.h"
#include "kernels/simd.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

// Naive reference GEMM in double precision.
std::vector<double> RefGemm(const std::vector<float>& a, const std::vector<float>& b, int64_t m,
                            int64_t n, int64_t k, const std::vector<float>* bias) {
  std::vector<double> c(static_cast<size_t>(m * n), 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = bias != nullptr ? static_cast<double>((*bias)[static_cast<size_t>(i)]) : 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[static_cast<size_t>(i * k + kk)]) *
               static_cast<double>(b[static_cast<size_t>(kk * n + j)]);
      }
      c[static_cast<size_t>(i * n + j)] = acc;
    }
  }
  return c;
}

std::vector<float> RandomVec(size_t n, uint64_t seed, float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) {
    x = rng.Uniform(lo, hi);
  }
  return v;
}

TEST(GemmF32Test, MatchesReference) {
  const int64_t m = 7, n = 13, k = 19;
  const auto a = RandomVec(static_cast<size_t>(m * k), 1);
  const auto b = RandomVec(static_cast<size_t>(k * n), 2);
  const auto bias = RandomVec(static_cast<size_t>(m), 3);
  std::vector<float> c(static_cast<size_t>(m * n));
  GemmF32(a.data(), b.data(), c.data(), m, n, k, bias.data(), false);
  const auto ref = RefGemm(a, b, m, n, k, &bias);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4) << i;
  }
}

TEST(GemmF32Test, ReluClampsNegatives) {
  const int64_t m = 4, n = 6, k = 8;
  const auto a = RandomVec(static_cast<size_t>(m * k), 4);
  const auto b = RandomVec(static_cast<size_t>(k * n), 5);
  std::vector<float> c(static_cast<size_t>(m * n));
  GemmF32(a.data(), b.data(), c.data(), m, n, k, nullptr, true);
  const auto ref = RefGemm(a, b, m, n, k, nullptr);
  bool saw_clamp = false;
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], std::max(ref[i], 0.0), 1e-4);
    saw_clamp |= ref[i] < 0.0;
  }
  EXPECT_TRUE(saw_clamp) << "test vector should exercise the clamp";
}

TEST(GemmF32Test, NoBiasMeansZeroInit) {
  const int64_t m = 2, n = 2, k = 1;
  const float a[] = {1.0f, 2.0f};
  const float b[] = {3.0f, 4.0f};
  float c[4] = {99.0f, 99.0f, 99.0f, 99.0f};  // Stale values must be overwritten.
  GemmF32(a, b, c, m, n, k, nullptr, false);
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 4.0f);
  EXPECT_FLOAT_EQ(c[2], 6.0f);
  EXPECT_FLOAT_EQ(c[3], 8.0f);
}

TEST(GemmF16Test, SmallValuesMatchF32Closely) {
  const int64_t m = 3, n = 5, k = 7;
  const auto a = RandomVec(static_cast<size_t>(m * k), 6, -0.5f, 0.5f);
  const auto b = RandomVec(static_cast<size_t>(k * n), 7, -0.5f, 0.5f);
  std::vector<Half> ah, bh;
  for (float v : a) ah.emplace_back(v);
  for (float v : b) bh.emplace_back(v);
  std::vector<Half> ch(static_cast<size_t>(m * n));
  GemmF16(ah.data(), bh.data(), ch.data(), m, n, k, nullptr, false);
  const auto ref = RefGemm(a, b, m, n, k, nullptr);
  for (size_t i = 0; i < ch.size(); ++i) {
    // F16 relative error per op ~2^-11; 7-term dot products stay within ~1%.
    EXPECT_NEAR(ch[i].ToFloat(), ref[i], std::fabs(ref[i]) * 0.02 + 0.01);
  }
}

TEST(GemmF16Test, AccumulationIsF16NotF32) {
  // Sum of 32 copies of 128.03125: in F16 the accumulator rounds each step,
  // diverging from the exact 4097. This pins the native-F16-ALU semantics.
  const int64_t k = 32;
  std::vector<Half> a(static_cast<size_t>(k), Half(128.03125f));
  std::vector<Half> b(static_cast<size_t>(k), Half(1.0f));
  Half c;
  GemmF16(a.data(), b.data(), &c, 1, 1, k, nullptr, false);
  EXPECT_NE(c.ToFloat(), 128.03125f * 32.0f);
  EXPECT_NEAR(c.ToFloat(), 4097.0f, 8.0f);
}

TEST(GemmQU8Test, MatchesDequantizedReference) {
  const int64_t m = 6, n = 9, k = 12;
  // Real-valued operands in [-1, 1], quantized with symmetric-ish ranges.
  const auto a_real = RandomVec(static_cast<size_t>(m * k), 8);
  const auto b_real = RandomVec(static_cast<size_t>(k * n), 9);
  const QuantParams a_qp = ChooseQuantParams(-1.0f, 1.0f);
  const QuantParams b_qp = ChooseQuantParams(-1.0f, 1.0f);
  const QuantParams c_qp = ChooseQuantParams(-6.0f, 6.0f);

  std::vector<uint8_t> a(static_cast<size_t>(m * k)), b(static_cast<size_t>(k * n));
  for (size_t i = 0; i < a.size(); ++i) a[i] = a_qp.Quantize(a_real[i]);
  for (size_t i = 0; i < b.size(); ++i) b[i] = b_qp.Quantize(b_real[i]);

  const RequantScale rs =
      ComputeRequantScale(static_cast<double>(a_qp.scale) * static_cast<double>(b_qp.scale) /
                          static_cast<double>(c_qp.scale));
  std::vector<uint8_t> c(static_cast<size_t>(m * n));
  GemmQU8(a.data(), a_qp.zero_point, b.data(), b_qp.zero_point, c.data(), c_qp.zero_point, rs, m,
          n, k, nullptr, false);

  // Reference on the *dequantized* operands (so only requantization error
  // and output rounding remain).
  std::vector<float> a_dq(a.size()), b_dq(b.size());
  for (size_t i = 0; i < a.size(); ++i) a_dq[i] = a_qp.Dequantize(a[i]);
  for (size_t i = 0; i < b.size(); ++i) b_dq[i] = b_qp.Dequantize(b[i]);
  const auto ref = RefGemm(a_dq, b_dq, m, n, k, nullptr);
  for (size_t i = 0; i < c.size(); ++i) {
    const float got = c_qp.Dequantize(c[i]);
    EXPECT_NEAR(got, ref[i], static_cast<double>(c_qp.scale) * 1.5) << i;
  }
}

TEST(GemmQU8Test, BiasIsAppliedInAccumulatorDomain) {
  const QuantParams a_qp{0.5f, 10};
  const QuantParams b_qp{0.25f, 20};
  const QuantParams c_qp{0.5f, 0};
  const int64_t k = 1;
  const uint8_t a = 14;  // real 2.0
  const uint8_t b = 28;  // real 2.0
  const int32_t bias = 8;  // real: 8 * (0.5*0.25) = 1.0
  const RequantScale rs = ComputeRequantScale(0.5 * 0.25 / 0.5);
  uint8_t c = 0;
  GemmQU8(&a, a_qp.zero_point, &b, b_qp.zero_point, &c, c_qp.zero_point, rs, 1, 1, k, &bias,
          false);
  // Expected real output: 2*2 + 1 = 5.0 -> q = 10.
  EXPECT_EQ(c, 10);
}

TEST(GemmQU8Test, QuantizedReluClampsAtZeroPoint) {
  const QuantParams qp{0.1f, 128};
  const int64_t k = 1;
  const uint8_t a = 100;  // real -2.8
  const uint8_t b = 200;  // real  7.2 -> product -20.16
  const RequantScale rs = ComputeRequantScale(0.1 * 0.1 / 0.1);
  uint8_t c_no_relu = 0, c_relu = 0;
  GemmQU8(&a, qp.zero_point, &b, qp.zero_point, &c_no_relu, qp.zero_point, rs, 1, 1, k, nullptr,
          false);
  GemmQU8(&a, qp.zero_point, &b, qp.zero_point, &c_relu, qp.zero_point, rs, 1, 1, k, nullptr,
          true);
  EXPECT_LT(c_no_relu, 128);  // Negative real value.
  EXPECT_EQ(c_relu, 128);     // Clamped to quantized zero.
}

// Property sweep: quantized GEMM error stays bounded across sizes.
class GemmQU8Property : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmQU8Property, ErrorBounded) {
  const auto [m, n, k] = GetParam();
  const auto a_real = RandomVec(static_cast<size_t>(m * k), static_cast<uint64_t>(m * 31 + n));
  const auto b_real = RandomVec(static_cast<size_t>(k * n), static_cast<uint64_t>(k * 17 + m));
  const QuantParams a_qp = ChooseQuantParams(-1.0f, 1.0f);
  const QuantParams b_qp = ChooseQuantParams(-1.0f, 1.0f);
  const float out_range = static_cast<float>(k) * 0.6f;
  const QuantParams c_qp = ChooseQuantParams(-out_range, out_range);
  std::vector<uint8_t> a(a_real.size()), b(b_real.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] = a_qp.Quantize(a_real[i]);
  for (size_t i = 0; i < b.size(); ++i) b[i] = b_qp.Quantize(b_real[i]);
  const RequantScale rs =
      ComputeRequantScale(static_cast<double>(a_qp.scale) * static_cast<double>(b_qp.scale) /
                          static_cast<double>(c_qp.scale));
  std::vector<uint8_t> c(static_cast<size_t>(m) * static_cast<size_t>(n));
  GemmQU8(a.data(), a_qp.zero_point, b.data(), b_qp.zero_point, c.data(), c_qp.zero_point, rs, m,
          n, k, nullptr, false);
  std::vector<float> a_dq(a.size()), b_dq(b.size());
  for (size_t i = 0; i < a.size(); ++i) a_dq[i] = a_qp.Dequantize(a[i]);
  for (size_t i = 0; i < b.size(); ++i) b_dq[i] = b_qp.Dequantize(b[i]);
  const auto ref = RefGemm(a_dq, b_dq, m, n, k, nullptr);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c_qp.Dequantize(c[i]), ref[i], static_cast<double>(c_qp.scale) * 1.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmQU8Property,
                         ::testing::Values(std::make_tuple(1, 1, 64),
                                           std::make_tuple(16, 16, 16),
                                           std::make_tuple(3, 32, 128),
                                           std::make_tuple(32, 3, 9),
                                           std::make_tuple(8, 64, 27)));

// ---- SIMD dispatch matrix (DESIGN.md Section 13) ----------------------------
// Every ISA variant must reproduce the scalar reference exactly: the QU8 and
// F32 outputs byte-identical, the F16 output bit-identical per element. The
// shapes cover full 4-row tiles, partial tiles, vector-width tails, scalar
// column tails, single elements and empty ranges; the packed-panel variant
// must match the row-major one on every ISA too.

class IsaGuard {
 public:
  explicit IsaGuard(simd::Isa isa) { simd::ForceIsa(isa); }
  ~IsaGuard() { simd::ResetForcedIsa(); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
};

struct GemmShape {
  int64_t m, n, k;
};

const GemmShape kDispatchShapes[] = {
    {1, 1, 1},     // single element
    {3, 5, 7},     // partial row tile + scalar column tail
    {4, 16, 32},   // exact tiles
    {5, 257, 40},  // 4+1 rows, 16-wide blocks + 8-block + 1-col tail
    {8, 260, 33},  // vector tail columns, odd k
    {0, 8, 8},     // empty m
    {4, 8, 0},     // empty k (bias passthrough)
    {7, 129, 65},  // everything misaligned
    {64, 48, 96},  // several chunks worth of rows
};

template <typename T>
bool BytesEqual(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

TEST(SimdDispatchTest, SupportedIsasEndsWithScalar) {
  const auto isas = simd::SupportedIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.back(), simd::Isa::kScalar);
}

TEST(SimdDispatchTest, F32ByteIdenticalAcrossIsas) {
  for (const GemmShape& s : kDispatchShapes) {
    auto a = RandomVec(static_cast<size_t>(s.m * s.k), 11);
    // Sprinkle exact zeros so the per-(row, k) skip path fires on some rows
    // while others stay zero-free (the prescanned fast path).
    for (size_t i = 0; i < a.size(); i += 7) {
      a[i] = 0.0f;
    }
    const auto b = RandomVec(static_cast<size_t>(s.k * s.n), 12);
    const auto bias = RandomVec(static_cast<size_t>(s.m), 13);
    std::vector<float> ap(static_cast<size_t>(PackedPanelElems(s.m, s.k)));
    PackRowPanels(a.data(), s.m, s.k, ap.data());
    std::vector<float> want(static_cast<size_t>(s.m * s.n));
    {
      const IsaGuard g(simd::Isa::kScalar);
      GemmF32(a.data(), b.data(), want.data(), s.m, s.n, s.k, bias.data(), true);
    }
    for (const simd::Isa isa : simd::SupportedIsas()) {
      const IsaGuard g(isa);
      EXPECT_EQ(simd::ActiveGemmMicroKernels().isa, isa);
      std::vector<float> got(want.size(), -1.0f);
      GemmF32(a.data(), b.data(), got.data(), s.m, s.n, s.k, bias.data(), true);
      EXPECT_TRUE(BytesEqual(want, got))
          << simd::IsaName(isa) << " m=" << s.m << " n=" << s.n << " k=" << s.k;
      std::vector<float> got_packed(want.size(), -2.0f);
      GemmF32(a.data(), b.data(), got_packed.data(), s.m, s.n, s.k, bias.data(), true,
              ap.empty() ? nullptr : ap.data());
      EXPECT_TRUE(BytesEqual(want, got_packed))
          << simd::IsaName(isa) << " packed m=" << s.m << " n=" << s.n << " k=" << s.k;
    }
  }
}

TEST(SimdDispatchTest, F16BitIdenticalAcrossIsas) {
  for (const GemmShape& s : kDispatchShapes) {
    const auto af = RandomVec(static_cast<size_t>(s.m * s.k), 21);
    const auto bf = RandomVec(static_cast<size_t>(s.k * s.n), 22);
    const auto biasf = RandomVec(static_cast<size_t>(s.m), 23);
    std::vector<Half> a(af.size()), b(bf.size()), bias(biasf.size());
    for (size_t i = 0; i < af.size(); ++i) a[i] = Half(af[i]);
    for (size_t i = 0; i < bf.size(); ++i) b[i] = Half(bf[i]);
    for (size_t i = 0; i < biasf.size(); ++i) bias[i] = Half(biasf[i]);
    std::vector<Half> ap(static_cast<size_t>(PackedPanelElems(s.m, s.k)));
    PackRowPanels(a.data(), s.m, s.k, ap.data());
    std::vector<Half> want(static_cast<size_t>(s.m * s.n));
    {
      const IsaGuard g(simd::Isa::kScalar);
      GemmF16(a.data(), b.data(), want.data(), s.m, s.n, s.k, bias.data(), true);
    }
    for (const simd::Isa isa : simd::SupportedIsas()) {
      const IsaGuard g(isa);
      std::vector<Half> got(want.size(), Half(-1.0f));
      GemmF16(a.data(), b.data(), got.data(), s.m, s.n, s.k, bias.data(), true);
      EXPECT_TRUE(BytesEqual(want, got))
          << simd::IsaName(isa) << " m=" << s.m << " n=" << s.n << " k=" << s.k;
      std::vector<Half> got_packed(want.size(), Half(-2.0f));
      GemmF16(a.data(), b.data(), got_packed.data(), s.m, s.n, s.k, bias.data(), true,
              ap.empty() ? nullptr : ap.data());
      EXPECT_TRUE(BytesEqual(want, got_packed))
          << simd::IsaName(isa) << " packed m=" << s.m << " n=" << s.n << " k=" << s.k;
    }
  }
}

TEST(SimdDispatchTest, QU8ByteIdenticalAcrossIsas) {
  const QuantParams a_qp = ChooseQuantParams(-1.0f, 1.0f);
  const QuantParams b_qp = ChooseQuantParams(-1.0f, 1.0f);
  for (const GemmShape& s : kDispatchShapes) {
    const auto a_real = RandomVec(static_cast<size_t>(s.m * s.k), 31);
    const auto b_real = RandomVec(static_cast<size_t>(s.k * s.n), 32);
    std::vector<uint8_t> a(a_real.size()), b(b_real.size());
    for (size_t i = 0; i < a.size(); ++i) a[i] = a_qp.Quantize(a_real[i]);
    for (size_t i = 0; i < b.size(); ++i) b[i] = b_qp.Quantize(b_real[i]);
    std::vector<int32_t> bias(static_cast<size_t>(s.m));
    for (size_t i = 0; i < bias.size(); ++i) bias[i] = static_cast<int32_t>(i * 3) - 5;
    const QuantParams c_qp = ChooseQuantParams(-static_cast<float>(s.k) * 0.6f - 1.0f,
                                               static_cast<float>(s.k) * 0.6f + 1.0f);
    const RequantScale rs =
        ComputeRequantScale(static_cast<double>(a_qp.scale) * static_cast<double>(b_qp.scale) /
                            static_cast<double>(c_qp.scale));
    std::vector<uint8_t> ap(static_cast<size_t>(PackedPanelElems(s.m, s.k)));
    PackRowPanels(a.data(), s.m, s.k, ap.data());
    std::vector<uint8_t> want(static_cast<size_t>(s.m * s.n));
    {
      const IsaGuard g(simd::Isa::kScalar);
      GemmQU8(a.data(), a_qp.zero_point, b.data(), b_qp.zero_point, want.data(),
              c_qp.zero_point, rs, s.m, s.n, s.k, bias.data(), true);
    }
    for (const simd::Isa isa : simd::SupportedIsas()) {
      const IsaGuard g(isa);
      std::vector<uint8_t> got(want.size(), 0xAA);
      GemmQU8(a.data(), a_qp.zero_point, b.data(), b_qp.zero_point, got.data(),
              c_qp.zero_point, rs, s.m, s.n, s.k, bias.data(), true);
      EXPECT_TRUE(BytesEqual(want, got))
          << simd::IsaName(isa) << " m=" << s.m << " n=" << s.n << " k=" << s.k;
      std::vector<uint8_t> got_packed(want.size(), 0x55);
      GemmQU8(a.data(), a_qp.zero_point, b.data(), b_qp.zero_point, got_packed.data(),
              c_qp.zero_point, rs, s.m, s.n, s.k, bias.data(), true, nullptr,
              ap.empty() ? nullptr : ap.data());
      EXPECT_TRUE(BytesEqual(want, got_packed))
          << simd::IsaName(isa) << " packed m=" << s.m << " n=" << s.n << " k=" << s.k;
    }
  }
}

}  // namespace
}  // namespace ulayer
