// Tensor-slice wire format (DESIGN.md Section 15): encode/decode round-trips
// across dtypes and odd shapes, channel-split boundary behaviour, MTU
// fragmentation/reassembly, and the golden byte layout that pins the format.
#include "net/wire.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "tensor/tensor.h"

namespace ulayer {
namespace {

using net::DecodeTensorSlice;
using net::EncodeTensorSlice;
using net::Fragment;
using net::FragmentCount;
using net::FragmentMessage;
using net::ReassembleMessage;
using net::ScatterSlice;
using net::WireSlice;

// Deterministic non-trivial byte pattern; works for any dtype since the wire
// layer is byte-exact and never interprets elements.
Tensor MakePatterned(Shape shape, DType dtype, uint8_t salt) {
  Tensor t(shape, dtype);
  uint8_t* raw = t.raw();
  for (int64_t i = 0; i < t.SizeBytes(); ++i) {
    raw[i] = static_cast<uint8_t>((i * 37 + salt) & 0xff);
  }
  return t;
}

void ExpectSameBytes(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.SizeBytes(), b.SizeBytes());
  EXPECT_EQ(std::memcmp(a.raw(), b.raw(), static_cast<size_t>(a.SizeBytes())), 0);
}

void ExpectParseError(const std::vector<uint8_t>& msg, const std::string& label) {
  try {
    DecodeTensorSlice(msg);
    FAIL() << "expected kParse for " << label;
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse) << label;
  }
}

// --- Encode/decode round-trips ----------------------------------------------

TEST(WireTest, FullTensorRoundTripsAcrossDTypesAndOddShapes) {
  const DType dtypes[] = {DType::kQUInt8, DType::kF16, DType::kF32};
  const Shape shapes[] = {Shape(1, 1, 1, 1), Shape(2, 3, 5, 7), Shape(1, 16, 1, 1),
                          Shape(3, 5, 2, 2), Shape(1, 7, 13, 1)};
  uint8_t salt = 1;
  for (DType dtype : dtypes) {
    for (const Shape& shape : shapes) {
      Tensor src = MakePatterned(shape, dtype, salt++);
      src.set_quant_params(0.0625f, 17);
      const std::vector<uint8_t> msg = EncodeTensorSlice(src, 42, 0, shape.c);
      EXPECT_EQ(static_cast<int64_t>(msg.size()),
                net::WireSliceBytes(shape, dtype, 0, shape.c));
      const WireSlice slice = DecodeTensorSlice(msg);
      EXPECT_EQ(slice.node, 42);
      EXPECT_EQ(slice.shape, shape);
      EXPECT_EQ(slice.dtype, dtype);
      EXPECT_EQ(slice.c_begin, 0);
      EXPECT_EQ(slice.c_end, shape.c);
      EXPECT_FLOAT_EQ(slice.scale, 0.0625f);
      EXPECT_EQ(slice.zero_point, 17);
      Tensor dst(shape, dtype);
      ScatterSlice(slice, dst);
      ExpectSameBytes(src, dst);
    }
  }
}

TEST(WireTest, ChannelSplitSlicesReassembleTheTensorByteIdentically) {
  // The coordinator's merge path: disjoint channel slices, scattered into one
  // tensor, must restore it exactly — including multi-batch rows and a
  // channel count the split does not divide evenly.
  const Shape shape(2, 7, 3, 5);
  for (DType dtype : {DType::kQUInt8, DType::kF16, DType::kF32}) {
    const Tensor src = MakePatterned(shape, dtype, 99);
    const int64_t bounds[] = {0, 2, 3, 7};  // Uneven on purpose.
    Tensor dst(shape, dtype);
    dst.Zero();
    for (size_t i = 0; i + 1 < std::size(bounds); ++i) {
      const std::vector<uint8_t> msg = EncodeTensorSlice(src, 5, bounds[i], bounds[i + 1]);
      ScatterSlice(DecodeTensorSlice(msg), dst);
    }
    ExpectSameBytes(src, dst);
  }
}

TEST(WireTest, EncodeRejectsEmptyAndOutOfRangeSlices) {
  const Tensor t = MakePatterned(Shape(1, 4, 2, 2), DType::kF32, 3);
  const int64_t bad[][2] = {{-1, 2}, {2, 2}, {3, 2}, {0, 5}, {4, 4}};
  for (const auto& range : bad) {
    EXPECT_THROW(EncodeTensorSlice(t, 0, range[0], range[1]), Error)
        << "[" << range[0] << ", " << range[1] << ")";
  }
  // Scatter rejects a mismatched target.
  const WireSlice slice = DecodeTensorSlice(EncodeTensorSlice(t, 0, 0, 4));
  Tensor wrong_shape(Shape(1, 4, 2, 3), DType::kF32);
  EXPECT_THROW(ScatterSlice(slice, wrong_shape), Error);
  Tensor wrong_dtype(Shape(1, 4, 2, 2), DType::kF16);
  EXPECT_THROW(ScatterSlice(slice, wrong_dtype), Error);
}

TEST(WireTest, DecodeRejectsCorruptMessagesWithTypedParseErrors) {
  const Tensor t = MakePatterned(Shape(1, 3, 2, 2), DType::kQUInt8, 7);
  const std::vector<uint8_t> good = EncodeTensorSlice(t, 1, 0, 3);
  ASSERT_NO_THROW(DecodeTensorSlice(good));

  std::vector<uint8_t> truncated_header(good.begin(), good.begin() + 20);
  ExpectParseError(truncated_header, "truncated header");

  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xff;
  ExpectParseError(bad_magic, "bad magic");

  std::vector<uint8_t> bad_version = good;
  bad_version[4] = 0x7f;
  ExpectParseError(bad_version, "bad version");

  std::vector<uint8_t> bad_dtype = good;
  bad_dtype[6] = 0xee;
  ExpectParseError(bad_dtype, "bad dtype");

  std::vector<uint8_t> bad_shape = good;
  bad_shape[16] = 0;  // c = 0.
  ExpectParseError(bad_shape, "invalid shape");

  std::vector<uint8_t> bad_range = good;
  bad_range[36] = 9;  // c_end = 9 > c = 3.
  ExpectParseError(bad_range, "channel range out of shape");

  std::vector<uint8_t> bad_payload_decl = good;
  bad_payload_decl[52] = static_cast<uint8_t>(bad_payload_decl[52] + 1);
  ExpectParseError(bad_payload_decl, "declared payload size mismatch");

  std::vector<uint8_t> short_payload = good;
  short_payload.pop_back();
  ExpectParseError(short_payload, "short payload");

  std::vector<uint8_t> long_payload = good;
  long_payload.push_back(0);
  ExpectParseError(long_payload, "trailing bytes");
}

// --- Golden byte layout ------------------------------------------------------

TEST(WireTest, GoldenByteLayoutIsPinned) {
  // Shape (1, 2, 2, 2) QUInt8 with bytes 0..7; slice [1, 2) of node 7 with
  // scale 0.5 and zero point 3. Any change to this layout is a wire-format
  // break and must bump kWireVersion.
  Tensor t(Shape(1, 2, 2, 2), DType::kQUInt8);
  for (int64_t i = 0; i < t.SizeBytes(); ++i) {
    t.raw()[i] = static_cast<uint8_t>(i);
  }
  t.set_quant_params(0.5f, 3);
  const std::vector<uint8_t> msg = EncodeTensorSlice(t, 7, 1, 2);
  const uint8_t golden[] = {
      0x31, 0x57, 0x4c, 0x75,                          // magic "1WLu"
      0x01, 0x00,                                      // version 1
      0x02,                                            // dtype kQUInt8
      0x00,                                            // reserved
      0x07, 0x00, 0x00, 0x00,                          // node 7
      0x01, 0x00, 0x00, 0x00,                          // n = 1
      0x02, 0x00, 0x00, 0x00,                          // c = 2
      0x02, 0x00, 0x00, 0x00,                          // h = 2
      0x02, 0x00, 0x00, 0x00,                          // w = 2
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // c_begin = 1
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // c_end = 2
      0x00, 0x00, 0x00, 0x3f,                          // scale 0.5f bits
      0x03, 0x00, 0x00, 0x00,                          // zero_point 3
      0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload_bytes = 4
      0x04, 0x05, 0x06, 0x07,                          // channel 1 payload
  };
  ASSERT_EQ(msg.size(), sizeof(golden));
  EXPECT_EQ(std::memcmp(msg.data(), golden, sizeof(golden)), 0);
}

// --- MTU fragmentation -------------------------------------------------------

TEST(WireTest, FragmentationRoundTripsInAnyOrder) {
  std::vector<uint8_t> msg(10);
  std::iota(msg.begin(), msg.end(), uint8_t{0});
  EXPECT_EQ(FragmentCount(10, 3), 4);
  EXPECT_EQ(FragmentCount(9, 3), 3);
  EXPECT_EQ(FragmentCount(0, 3), 0);
  EXPECT_EQ(FragmentCount(1, 1 << 20), 1);

  std::vector<Fragment> frags = FragmentMessage(77, msg, 3);
  ASSERT_EQ(frags.size(), 4u);
  EXPECT_EQ(frags[0].bytes.size(), 3u);
  EXPECT_EQ(frags[3].bytes.size(), 1u);  // Tail fragment carries the rest.
  for (size_t i = 0; i < frags.size(); ++i) {
    EXPECT_EQ(frags[i].seq, 77u);
    EXPECT_EQ(frags[i].index, i);
    EXPECT_EQ(frags[i].count, 4u);
  }
  // Reassembly accepts any order.
  std::reverse(frags.begin(), frags.end());
  EXPECT_EQ(ReassembleMessage(frags), msg);
  std::swap(frags[0], frags[2]);
  EXPECT_EQ(ReassembleMessage(frags), msg);
  // An MTU larger than the message yields one fragment.
  const std::vector<Fragment> one = FragmentMessage(5, msg, 1024);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(ReassembleMessage(one), msg);
  EXPECT_THROW(FragmentMessage(1, msg, 0), Error);
}

TEST(WireTest, ReassemblyRejectsGapsDuplicatesAndMixedSequences) {
  std::vector<uint8_t> msg(8);
  std::iota(msg.begin(), msg.end(), uint8_t{0});
  const std::vector<Fragment> frags = FragmentMessage(9, msg, 3);
  ASSERT_EQ(frags.size(), 3u);

  const auto expect_parse = [](const std::vector<Fragment>& fs, const std::string& label) {
    try {
      ReassembleMessage(fs);
      FAIL() << "expected kParse for " << label;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse) << label;
    }
  };

  expect_parse({}, "empty set");

  std::vector<Fragment> gap = {frags[0], frags[2]};
  expect_parse(gap, "missing fragment");

  std::vector<Fragment> dup = frags;
  dup[2] = dup[0];  // Same count of fragments, index 0 twice, index 2 gone.
  expect_parse(dup, "duplicate fragment");

  std::vector<Fragment> mixed = frags;
  mixed[1].seq = 10;
  expect_parse(mixed, "mixed sequence numbers");

  std::vector<Fragment> bad_count = frags;
  bad_count[1].count = 7;
  expect_parse(bad_count, "inconsistent counts");

  std::vector<Fragment> bad_index = frags;
  bad_index[1].index = 5;
  expect_parse(bad_index, "index out of range");

  // Fragment payload sizes are not re-derived: reassembly is a pure
  // order/completeness check, so the happy path still holds afterwards.
  EXPECT_EQ(ReassembleMessage(frags), msg);
}

TEST(WireTest, EncodedSliceSurvivesMtuFragmentation) {
  // End-to-end transport path of the coordinator: encode, fragment at the
  // default link MTU, reassemble, decode, scatter.
  const Shape shape(2, 6, 16, 16);
  const Tensor src = MakePatterned(shape, DType::kF16, 21);
  const std::vector<uint8_t> msg = EncodeTensorSlice(src, 3, 2, 5);
  ASSERT_GT(static_cast<int64_t>(msg.size()), 1472);
  std::vector<Fragment> frags = FragmentMessage(1, msg, 1472);
  EXPECT_EQ(static_cast<int64_t>(frags.size()),
            FragmentCount(static_cast<int64_t>(msg.size()), 1472));
  std::rotate(frags.begin(), frags.begin() + 1, frags.end());
  const WireSlice slice = DecodeTensorSlice(ReassembleMessage(frags));
  Tensor dst(shape, DType::kF16);
  dst.Zero();
  ScatterSlice(slice, dst);
  // Only channels [2, 5) were carried; compare the slice region per batch.
  const int64_t esize = DTypeSize(DType::kF16);
  const int64_t row_bytes = 3 * shape.h * shape.w * esize;
  for (int64_t ni = 0; ni < shape.n; ++ni) {
    const int64_t off = shape.Offset(ni, 2, 0, 0) * esize;
    EXPECT_EQ(std::memcmp(dst.raw() + off, src.raw() + off, static_cast<size_t>(row_bytes)), 0);
  }
}

TEST(WireTest, Fnv1a64IsStableAndSensitive) {
  const uint8_t a[] = {1, 2, 3, 4};
  const uint8_t b[] = {1, 2, 3, 5};
  EXPECT_EQ(net::Fnv1a64(a, sizeof(a)), net::Fnv1a64(a, sizeof(a)));
  EXPECT_NE(net::Fnv1a64(a, sizeof(a)), net::Fnv1a64(b, sizeof(b)));
  // Empty input returns the basis — chaining starts from the previous digest.
  EXPECT_EQ(net::Fnv1a64(a, 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(net::Fnv1a64(a, 0, 123u), 123u);
}

}  // namespace
}  // namespace ulayer
