#include "kernels/conv.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/pack.h"
#include "kernels/simd.h"
#include "memory/arena.h"
#include "quant/quantize.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

// Naive direct convolution in double precision (the oracle).
Tensor RefConv(const Tensor& in, const Tensor& w, const Tensor& bias, const Conv2DParams& p) {
  const Shape& is = in.shape();
  const Shape& fs = w.shape();
  const int oh = p.OutH(static_cast<int>(is.h));
  const int ow = p.OutW(static_cast<int>(is.w));
  Tensor out(Shape(is.n, fs.n, oh, ow), DType::kF32);
  for (int64_t ni = 0; ni < is.n; ++ni) {
    for (int64_t oc = 0; oc < fs.n; ++oc) {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          double acc = bias.empty() ? 0.0 : static_cast<double>(bias.Data<float>()[oc]);
          for (int64_t ic = 0; ic < is.c; ++ic) {
            for (int kh = 0; kh < p.kernel_h; ++kh) {
              for (int kw = 0; kw < p.kernel_w; ++kw) {
                const int ih = y * p.stride_h - p.pad_h + kh;
                const int iw = x * p.stride_w - p.pad_w + kw;
                if (ih < 0 || ih >= is.h || iw < 0 || iw >= is.w) {
                  continue;
                }
                acc += static_cast<double>(in.Data<float>()[is.Offset(ni, ic, ih, iw)]) *
                       static_cast<double>(w.Data<float>()[fs.Offset(oc, ic, kh, kw)]);
              }
            }
          }
          if (p.relu) {
            acc = std::max(acc, 0.0);
          }
          out.Data<float>()[out.shape().Offset(ni, oc, y, x)] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

struct ConvCase {
  int64_t n, ic, h, w, oc;
  int kernel, stride, pad;
  bool relu;
};

class ConvF32Param : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvF32Param, MatchesDirectReference) {
  const ConvCase cc = GetParam();
  Conv2DParams p;
  p.kernel_h = p.kernel_w = cc.kernel;
  p.stride_h = p.stride_w = cc.stride;
  p.pad_h = p.pad_w = cc.pad;
  p.relu = cc.relu;
  Tensor in(Shape(cc.n, cc.ic, cc.h, cc.w), DType::kF32);
  Tensor w(Shape(cc.oc, cc.ic, cc.kernel, cc.kernel), DType::kF32);
  Tensor bias(Shape(1, cc.oc, 1, 1), DType::kF32);
  FillUniform(in, 1);
  FillUniform(w, 2, -0.5f, 0.5f);
  FillUniform(bias, 3, -0.1f, 0.1f);
  const Tensor ref = RefConv(in, w, bias, p);
  Tensor out(ref.shape(), DType::kF32);
  Conv2DF32(in, w, bias, p, out);
  EXPECT_LT(MaxAbsDiff(out, ref), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvF32Param,
    ::testing::Values(ConvCase{1, 1, 5, 5, 1, 3, 1, 0, false},   // minimal
                      ConvCase{1, 3, 8, 8, 4, 3, 1, 1, true},    // pad + relu
                      ConvCase{1, 4, 9, 9, 6, 3, 2, 1, false},   // stride 2
                      ConvCase{2, 2, 7, 7, 3, 5, 1, 2, true},    // batch + 5x5
                      ConvCase{1, 8, 6, 6, 8, 1, 1, 0, true},    // 1x1 conv
                      ConvCase{1, 2, 11, 11, 5, 7, 4, 0, false}  // AlexNet-ish
                      ));

TEST(ConvF32Test, ChannelSlicesComposeExactly) {
  // Property: computing [0,k) and [k,oc) slices into one buffer must equal a
  // full-channel run bit-for-bit (this is what makes the cooperative merge
  // free and lossless).
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  Tensor in(Shape(1, 6, 10, 10), DType::kF32);
  Tensor w(Shape(8, 6, 3, 3), DType::kF32);
  Tensor bias(Shape(1, 8, 1, 1), DType::kF32);
  FillUniform(in, 4);
  FillUniform(w, 5, -0.3f, 0.3f);
  FillUniform(bias, 6, -0.1f, 0.1f);
  Tensor full(Shape(1, 8, 10, 10), DType::kF32);
  Conv2DF32(in, w, bias, p, full);
  for (const int64_t split : {1, 3, 4, 7}) {
    Tensor split_out(Shape(1, 8, 10, 10), DType::kF32);
    Conv2DF32(in, w, bias, p, split_out, 0, split);
    Conv2DF32(in, w, bias, p, split_out, split, 8);
    EXPECT_EQ(MaxAbsDiff(full, split_out), 0.0f) << "split=" << split;
  }
}

TEST(ConvF16Test, TracksF32WithinHalfPrecision) {
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  Tensor in(Shape(1, 4, 8, 8), DType::kF32);
  Tensor w(Shape(4, 4, 3, 3), DType::kF32);
  Tensor bias(Shape(1, 4, 1, 1), DType::kF32);
  FillUniform(in, 7, -0.5f, 0.5f);
  FillUniform(w, 8, -0.3f, 0.3f);
  FillUniform(bias, 9, -0.1f, 0.1f);
  const Tensor ref = RefConv(in, w, bias, p);
  Tensor out16(ref.shape(), DType::kF16);
  Conv2DF16(ToF16Tensor(in), ToF16Tensor(w), ToF16Tensor(bias), p, out16);
  const Tensor out = F16ToF32Tensor(out16);
  // 36-term dot products in F16: allow ~2% relative error.
  for (int64_t i = 0; i < ref.NumElements(); ++i) {
    const float r = ref.Data<float>()[i];
    EXPECT_NEAR(out.Data<float>()[i], r, std::fabs(r) * 0.03f + 0.02f);
  }
}

TEST(ConvQU8Test, MatchesF32ReferenceWithinScale) {
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  p.relu = true;
  Tensor in(Shape(1, 4, 8, 8), DType::kF32);
  Tensor w(Shape(6, 4, 3, 3), DType::kF32);
  Tensor bias(Shape(1, 6, 1, 1), DType::kF32);
  FillUniform(in, 10, -1.0f, 1.0f);
  FillUniform(w, 11, -0.4f, 0.4f);
  FillUniform(bias, 12, -0.2f, 0.2f);
  const Tensor ref = RefConv(in, w, bias, p);

  // Quantize operands and the output range (from the reference, as a
  // calibrated runtime would).
  const QuantParams in_qp = ChooseQuantParams(-1.0f, 1.0f);
  const QuantParams w_qp = ChooseQuantParams(-0.4f, 0.4f);
  MinMaxObserver obs;
  obs.Observe(ref);
  const QuantParams out_qp = obs.Params();

  const Tensor in_q = QuantizeTensor(in, in_qp);
  const Tensor w_q = QuantizeTensor(w, w_qp);
  Tensor bias_i32(bias.shape(), DType::kInt32);
  for (int64_t i = 0; i < bias.NumElements(); ++i) {
    bias_i32.Data<int32_t>()[i] = static_cast<int32_t>(
        std::lround(bias.Data<float>()[i] / (in_qp.scale * w_qp.scale)));
  }
  Tensor out_q(ref.shape(), DType::kQUInt8);
  out_q.set_quant_params(out_qp.scale, out_qp.zero_point);
  Conv2DQU8(in_q, w_q, bias_i32, p, out_q);

  const Tensor out = DequantizeTensor(out_q);
  // Input-quantization error propagates through the 36-term dot product;
  // bound by a few output scales.
  EXPECT_LT(MaxAbsDiff(out, ref), out_qp.scale * 2.0f + 0.15f);
  EXPECT_LT(RmsDiff(out, ref), 0.06f);
}

TEST(ConvQU8Test, ChannelSlicesComposeExactly) {
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  Tensor in(Shape(1, 4, 6, 6), DType::kF32);
  Tensor w(Shape(8, 4, 3, 3), DType::kF32);
  FillUniform(in, 13, -1.0f, 1.0f);
  FillUniform(w, 14, -0.5f, 0.5f);
  const Tensor in_q = QuantizeTensor(in, ChooseQuantParams(-1.0f, 1.0f));
  const Tensor w_q = QuantizeTensor(w, ChooseQuantParams(-0.5f, 0.5f));
  const QuantParams out_qp = ChooseQuantParams(-6.0f, 6.0f);
  Tensor bias;

  Tensor full(Shape(1, 8, 6, 6), DType::kQUInt8);
  full.set_quant_params(out_qp.scale, out_qp.zero_point);
  Conv2DQU8(in_q, w_q, bias, p, full);
  Tensor split_out(Shape(1, 8, 6, 6), DType::kQUInt8);
  split_out.set_quant_params(out_qp.scale, out_qp.zero_point);
  Conv2DQU8(in_q, w_q, bias, p, split_out, 0, 3);
  Conv2DQU8(in_q, w_q, bias, p, split_out, 3, 8);
  EXPECT_EQ(std::memcmp(full.raw(), split_out.raw(), static_cast<size_t>(full.SizeBytes())), 0);
}

TEST(ConvQU8ViaF16Test, GpuPathApproximatesCpuPath) {
  // The processor-friendly GPU path (u8 storage, F16 math) must produce
  // outputs close to the CPU integer path — this is the paper's claim that
  // cooperative slices from different processors merge into one tensor.
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  p.relu = true;
  Tensor in(Shape(1, 4, 8, 8), DType::kF32);
  Tensor w(Shape(6, 4, 3, 3), DType::kF32);
  Tensor bias(Shape(1, 6, 1, 1), DType::kF32);
  FillUniform(in, 15, -1.0f, 1.0f);
  FillUniform(w, 16, -0.4f, 0.4f);
  FillUniform(bias, 17, -0.1f, 0.1f);

  const Tensor in_q = QuantizeTensor(in, ChooseQuantParams(-1.0f, 1.0f));
  const Tensor w_q = QuantizeTensor(w, ChooseQuantParams(-0.4f, 0.4f));
  const Tensor ref = RefConv(in, w, bias, p);
  MinMaxObserver obs;
  obs.Observe(ref);
  const QuantParams out_qp = obs.Params();

  Tensor bias_i32(bias.shape(), DType::kInt32);
  for (int64_t i = 0; i < bias.NumElements(); ++i) {
    bias_i32.Data<int32_t>()[i] = static_cast<int32_t>(
        std::lround(bias.Data<float>()[i] / (in_q.scale() * w_q.scale())));
  }

  Tensor cpu_out(ref.shape(), DType::kQUInt8);
  cpu_out.set_quant_params(out_qp.scale, out_qp.zero_point);
  Conv2DQU8(in_q, w_q, bias_i32, p, cpu_out);
  Tensor gpu_out(ref.shape(), DType::kQUInt8);
  gpu_out.set_quant_params(out_qp.scale, out_qp.zero_point);
  Conv2DQU8ViaF16(in_q, w_q, bias, p, gpu_out);

  // Compare in the real domain: both paths see identical u8 inputs, so they
  // differ only by F16 rounding vs int32 exactness.
  const Tensor a = DequantizeTensor(cpu_out);
  const Tensor b = DequantizeTensor(gpu_out);
  EXPECT_LT(MaxAbsDiff(a, b), out_qp.scale * 3.0f);
}

TEST(DepthwiseConvTest, F32MatchesPerChannelReference) {
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  p.stride_h = p.stride_w = 2;
  Tensor in(Shape(1, 4, 9, 9), DType::kF32);
  Tensor w(Shape(4, 1, 3, 3), DType::kF32);
  Tensor bias(Shape(1, 4, 1, 1), DType::kF32);
  FillUniform(in, 18);
  FillUniform(w, 19, -0.5f, 0.5f);
  FillUniform(bias, 20, -0.1f, 0.1f);
  Tensor out(Shape(1, 4, 5, 5), DType::kF32);
  DepthwiseConv2DF32(in, w, bias, p, out);

  // Per-channel reference: each channel is an ic=1 convolution.
  for (int64_t c = 0; c < 4; ++c) {
    Tensor in_c(Shape(1, 1, 9, 9), DType::kF32);
    std::memcpy(in_c.raw(), in.raw() + in.shape().Offset(0, c, 0, 0) * 4, 9 * 9 * 4);
    Tensor w_c(Shape(1, 1, 3, 3), DType::kF32);
    std::memcpy(w_c.raw(), w.raw() + c * 9 * 4, 9 * 4);
    Tensor b_c(Shape(1, 1, 1, 1), DType::kF32);
    b_c.Data<float>()[0] = bias.Data<float>()[c];
    const Tensor ref = RefConv(in_c, w_c, b_c, p);
    for (int64_t i = 0; i < ref.NumElements(); ++i) {
      EXPECT_NEAR(out.Data<float>()[out.shape().Offset(0, c, i / 5, i % 5)],
                  ref.Data<float>()[i], 1e-5f);
    }
  }
}

TEST(DepthwiseConvTest, ChannelSlicesComposeExactly) {
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  Tensor in(Shape(1, 6, 8, 8), DType::kF32);
  Tensor w(Shape(6, 1, 3, 3), DType::kF32);
  Tensor bias(Shape(1, 6, 1, 1), DType::kF32);
  FillUniform(in, 21);
  FillUniform(w, 22, -0.5f, 0.5f);
  FillUniform(bias, 23, -0.1f, 0.1f);
  Tensor full(Shape(1, 6, 8, 8), DType::kF32);
  DepthwiseConv2DF32(in, w, bias, p, full);
  Tensor split_out(Shape(1, 6, 8, 8), DType::kF32);
  DepthwiseConv2DF32(in, w, bias, p, split_out, 0, 2);
  DepthwiseConv2DF32(in, w, bias, p, split_out, 2, 6);
  EXPECT_EQ(MaxAbsDiff(full, split_out), 0.0f);
}

TEST(DepthwiseConvTest, QU8QuantizedPaddingIsExactZero) {
  // With a nonzero input zero_point, padded positions must contribute
  // exactly zero (in_zp - in_zp), not a bias.
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  Tensor in(Shape(1, 1, 3, 3), DType::kF32);
  in.Zero();  // All real zeros.
  Tensor w(Shape(1, 1, 3, 3), DType::kF32);
  for (int i = 0; i < 9; ++i) {
    w.Data<float>()[i] = 1.0f;
  }
  const Tensor in_q = QuantizeTensor(in, ChooseQuantParams(-1.0f, 1.0f));  // zp = 128.
  const Tensor w_q = QuantizeTensor(w, ChooseQuantParams(-1.0f, 1.0f));
  Tensor bias;
  Tensor out(Shape(1, 1, 3, 3), DType::kQUInt8);
  const QuantParams out_qp = ChooseQuantParams(-1.0f, 1.0f);
  out.set_quant_params(out_qp.scale, out_qp.zero_point);
  DepthwiseConv2DQU8(in_q, w_q, bias, p, out);
  for (int64_t i = 0; i < out.NumElements(); ++i) {
    EXPECT_EQ(out.Data<uint8_t>()[i], static_cast<uint8_t>(out_qp.zero_point));
  }
}

// ---- SIMD dispatch + prepare-time cache equivalence -------------------------
// The conv drivers must produce byte-identical outputs under every dispatched
// ISA, with and without packed filter panels, for tile-aligned AND unaligned
// cooperative oc slices (unaligned slices fall back to row-major filters),
// and — for the via-F16 path — with and without pre-staged input columns.

class IsaGuard {
 public:
  explicit IsaGuard(simd::Isa isa) { simd::ForceIsa(isa); }
  ~IsaGuard() { simd::ResetForcedIsa(); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
};

struct QU8ConvFixture {
  Conv2DParams p;
  Tensor in_q, w_q, bias_f32, bias_i32;
  QuantParams out_qp;
  std::vector<uint8_t> w_packed;

  QU8ConvFixture() {
    p.kernel_h = p.kernel_w = 3;
    p.pad_h = p.pad_w = 1;
    p.relu = true;
    Tensor in(Shape(2, 5, 7, 7), DType::kF32);
    Tensor w(Shape(11, 5, 3, 3), DType::kF32);  // Odd oc: partial last tile.
    bias_f32 = Tensor(Shape(1, 11, 1, 1), DType::kF32);
    FillUniform(in, 51, -1.0f, 1.0f);
    FillUniform(w, 52, -0.4f, 0.4f);
    FillUniform(bias_f32, 53, -0.1f, 0.1f);
    in_q = QuantizeTensor(in, ChooseQuantParams(-1.0f, 1.0f));
    w_q = QuantizeTensor(w, ChooseQuantParams(-0.4f, 0.4f));
    bias_i32 = Tensor(bias_f32.shape(), DType::kInt32);
    for (int64_t i = 0; i < bias_f32.NumElements(); ++i) {
      bias_i32.Data<int32_t>()[i] = static_cast<int32_t>(
          std::lround(bias_f32.Data<float>()[i] / (in_q.scale() * w_q.scale())));
    }
    out_qp = ChooseQuantParams(-4.0f, 4.0f);
    const int64_t k = w.shape().c * w.shape().h * w.shape().w;
    w_packed.resize(static_cast<size_t>(PackedPanelElems(w.shape().n, k)));
    PackRowPanels(w_q.Data<uint8_t>(), w.shape().n, k, w_packed.data());
  }

  Tensor MakeOut() const {
    Tensor out(Shape(2, 11, 7, 7), DType::kQUInt8);
    out.set_quant_params(out_qp.scale, out_qp.zero_point);
    return out;
  }
};

bool SameBytes(const Tensor& a, const Tensor& b) {
  return a.SizeBytes() == b.SizeBytes() &&
         std::memcmp(a.raw(), b.raw(), static_cast<size_t>(a.SizeBytes())) == 0;
}

TEST(ConvSimdDispatchTest, QU8SlicesByteIdenticalAcrossIsas) {
  const QU8ConvFixture f;
  Tensor want = f.MakeOut();
  {
    const IsaGuard g(simd::Isa::kScalar);
    Conv2DQU8(f.in_q, f.w_q, f.bias_i32, f.p, want);
  }
  for (const simd::Isa isa : simd::SupportedIsas()) {
    const IsaGuard g(isa);
    Tensor got = f.MakeOut();
    Conv2DQU8(f.in_q, f.w_q, f.bias_i32, f.p, got);
    EXPECT_TRUE(SameBytes(want, got)) << simd::IsaName(isa);

    // Cooperative slices with packed panels: [0, 8) is tile-aligned and uses
    // the panels; [8, 11) is the partial tail tile; a [3, 11) split is
    // unaligned and must silently fall back to the row-major filters.
    ConvAux aux;
    aux.filters_packed_qu8 = f.w_packed.data();
    Tensor sliced = f.MakeOut();
    Conv2DQU8(f.in_q, f.w_q, f.bias_i32, f.p, sliced, 0, 8, aux);
    Conv2DQU8(f.in_q, f.w_q, f.bias_i32, f.p, sliced, 8, 11, aux);
    EXPECT_TRUE(SameBytes(want, sliced)) << simd::IsaName(isa) << " packed slices";
    Tensor unaligned = f.MakeOut();
    Conv2DQU8(f.in_q, f.w_q, f.bias_i32, f.p, unaligned, 0, 3, aux);
    Conv2DQU8(f.in_q, f.w_q, f.bias_i32, f.p, unaligned, 3, 11, aux);
    EXPECT_TRUE(SameBytes(want, unaligned)) << simd::IsaName(isa) << " unaligned slices";
  }
}

TEST(ConvSimdDispatchTest, ViaF16ByteIdenticalAcrossIsas) {
  const QU8ConvFixture f;
  Tensor want = f.MakeOut();
  {
    const IsaGuard g(simd::Isa::kScalar);
    Conv2DQU8ViaF16(f.in_q, f.w_q, f.bias_f32, f.p, want);
  }
  for (const simd::Isa isa : simd::SupportedIsas()) {
    const IsaGuard g(isa);
    Tensor got = f.MakeOut();
    Conv2DQU8ViaF16(f.in_q, f.w_q, f.bias_f32, f.p, got);
    EXPECT_TRUE(SameBytes(want, got)) << simd::IsaName(isa);
    Tensor sliced = f.MakeOut();
    Conv2DQU8ViaF16(f.in_q, f.w_q, f.bias_f32, f.p, sliced, 0, 4);
    Conv2DQU8ViaF16(f.in_q, f.w_q, f.bias_f32, f.p, sliced, 4, 11);
    EXPECT_TRUE(SameBytes(want, sliced)) << simd::IsaName(isa) << " slices";
  }
}

TEST(ConvQU8ViaF16Test, StagedColsMatchUnstagedExactly) {
  // The cooperative staging path (dequantize + im2col hoisted out of the
  // per-slice calls) must not change a single output byte, for aligned and
  // unaligned slices alike.
  const QU8ConvFixture f;
  Tensor want = f.MakeOut();
  Conv2DQU8ViaF16(f.in_q, f.w_q, f.bias_f32, f.p, want);

  memory::ScratchArena arena(static_cast<size_t>(
      Conv2DViaF16StagedColsBytes(f.in_q.shape(), f.w_q.shape(), f.p) +
      Conv2DScratchBytes(DType::kQUInt8, DType::kF16, f.in_q.shape(), f.w_q.shape(), f.p,
                         /*staged_cols=*/true)));
  const Half* staged = Conv2DQU8ViaF16StageCols(f.in_q, f.w_q.shape(), f.p, &arena);
  ASSERT_NE(staged, nullptr);
  const memory::ScratchArena::Mark mark = arena.MarkPoint();

  ConvAux aux;
  aux.scratch = &arena;
  aux.staged_cols = staged;
  Tensor got = f.MakeOut();
  Conv2DQU8ViaF16(f.in_q, f.w_q, f.bias_f32, f.p, got, 0, 4, aux);
  arena.ResetTo(mark);
  Conv2DQU8ViaF16(f.in_q, f.w_q, f.bias_f32, f.p, got, 4, 11, aux);
  EXPECT_TRUE(SameBytes(want, got));

  // Null arena must decline to stage (legacy heap path keeps working).
  EXPECT_EQ(Conv2DQU8ViaF16StageCols(f.in_q, f.w_q.shape(), f.p, nullptr), nullptr);
}

}  // namespace
}  // namespace ulayer
