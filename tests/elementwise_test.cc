#include "kernels/elementwise.h"

#include <cmath>

#include <gtest/gtest.h>

#include "quant/quantize.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

TEST(ReluTest, F32ClampsInPlace) {
  Tensor t(Shape(1, 2, 3, 3), DType::kF32);
  FillUniform(t, 1, -1.0f, 1.0f);
  Tensor orig = t;
  ReluF32(t);
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(t.Data<float>()[i], std::max(orig.Data<float>()[i], 0.0f));
  }
}

TEST(ReluTest, ChannelRangeOnlyTouchesSlice) {
  Tensor t(Shape(1, 4, 2, 2), DType::kF32);
  FillUniform(t, 2, -1.0f, -0.5f);  // All negative.
  ReluF32(t, 1, 3);
  const Shape& s = t.shape();
  for (int64_t c = 0; c < 4; ++c) {
    for (int64_t i = 0; i < 4; ++i) {
      const float v = t.Data<float>()[s.Offset(0, c, i / 2, i % 2)];
      if (c >= 1 && c < 3) {
        EXPECT_EQ(v, 0.0f);
      } else {
        EXPECT_LT(v, 0.0f);
      }
    }
  }
}

TEST(ReluTest, QU8ClampsAtZeroPoint) {
  Tensor t(Shape(1, 1, 1, 4), DType::kQUInt8);
  t.set_quant_params(0.1f, 100);
  t.Data<uint8_t>()[0] = 50;   // real -5.0
  t.Data<uint8_t>()[1] = 100;  // real  0.0
  t.Data<uint8_t>()[2] = 150;  // real  5.0
  t.Data<uint8_t>()[3] = 0;    // real -10.0
  ReluQU8(t);
  EXPECT_EQ(t.Data<uint8_t>()[0], 100);
  EXPECT_EQ(t.Data<uint8_t>()[1], 100);
  EXPECT_EQ(t.Data<uint8_t>()[2], 150);
  EXPECT_EQ(t.Data<uint8_t>()[3], 100);
}

TEST(LrnTest, MatchesClosedForm) {
  // Single spatial position, known channels: verify the AlexNet formula
  // out_c = in_c / (k + alpha/n * sum window in^2)^beta.
  Tensor in(Shape(1, 3, 1, 1), DType::kF32);
  in.Data<float>()[0] = 1.0f;
  in.Data<float>()[1] = 2.0f;
  in.Data<float>()[2] = 3.0f;
  LrnParams p;
  p.local_size = 3;
  p.alpha = 0.5f;
  p.beta = 1.0f;
  p.k = 1.0f;
  Tensor out(in.shape(), DType::kF32);
  LrnF32(in, p, out);
  // c=0 window {0,1}: denom = 1 + 0.5/3*(1+4) = 1.8333...
  EXPECT_NEAR(out.Data<float>()[0], 1.0f / (1.0f + 0.5f / 3.0f * 5.0f), 1e-5f);
  // c=1 window {0,1,2}: denom = 1 + 0.5/3*14
  EXPECT_NEAR(out.Data<float>()[1], 2.0f / (1.0f + 0.5f / 3.0f * 14.0f), 1e-5f);
  // c=2 window {1,2}: denom = 1 + 0.5/3*13
  EXPECT_NEAR(out.Data<float>()[2], 3.0f / (1.0f + 0.5f / 3.0f * 13.0f), 1e-5f);
}

TEST(LrnTest, ChannelSlicesCompose) {
  Tensor in(Shape(1, 8, 4, 4), DType::kF32);
  FillUniform(in, 3);
  LrnParams p;
  Tensor full(in.shape(), DType::kF32);
  LrnF32(in, p, full);
  Tensor split_out(in.shape(), DType::kF32);
  LrnF32(in, p, split_out, 0, 5);
  LrnF32(in, p, split_out, 5, 8);
  EXPECT_EQ(MaxAbsDiff(full, split_out), 0.0f);
}

TEST(LrnTest, QU8TracksF32) {
  Tensor in(Shape(1, 6, 3, 3), DType::kF32);
  FillUniform(in, 4, -1.0f, 1.0f);
  LrnParams p;
  Tensor ref(in.shape(), DType::kF32);
  LrnF32(in, p, ref);

  const Tensor in_q = QuantizeTensor(in, ChooseQuantParams(-1.0f, 1.0f));
  Tensor out_q(in.shape(), DType::kQUInt8);
  const QuantParams out_qp = ChooseQuantParams(-1.0f, 1.0f);
  out_q.set_quant_params(out_qp.scale, out_qp.zero_point);
  LrnQU8(in_q, p, out_q);
  EXPECT_LT(MaxAbsDiff(DequantizeTensor(out_q), ref), 0.03f);
}

TEST(ConcatTest, StacksChannelsInOrder) {
  Tensor a(Shape(1, 2, 2, 2), DType::kF32);
  Tensor b(Shape(1, 3, 2, 2), DType::kF32);
  FillUniform(a, 5);
  FillUniform(b, 6);
  Tensor out(Shape(1, 5, 2, 2), DType::kF32);
  ConcatChannels({&a, &b}, out);
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    EXPECT_EQ(out.Data<float>()[i], a.Data<float>()[i]);
  }
  for (int64_t i = 0; i < b.NumElements(); ++i) {
    EXPECT_EQ(out.Data<float>()[a.NumElements() + i], b.Data<float>()[i]);
  }
}

TEST(ConcatTest, BatchedCopiesPerImage) {
  Tensor a(Shape(2, 1, 2, 2), DType::kF32);
  Tensor b(Shape(2, 1, 2, 2), DType::kF32);
  FillUniform(a, 7);
  FillUniform(b, 8);
  Tensor out(Shape(2, 2, 2, 2), DType::kF32);
  ConcatChannels({&a, &b}, out);
  const Shape& os = out.shape();
  for (int64_t ni = 0; ni < 2; ++ni) {
    for (int64_t i = 0; i < 4; ++i) {
      EXPECT_EQ(out.Data<float>()[os.Offset(ni, 0, i / 2, i % 2)],
                a.Data<float>()[a.shape().Offset(ni, 0, i / 2, i % 2)]);
      EXPECT_EQ(out.Data<float>()[os.Offset(ni, 1, i / 2, i % 2)],
                b.Data<float>()[b.shape().Offset(ni, 0, i / 2, i % 2)]);
    }
  }
}

TEST(ConcatTest, QU8RequantizesMismatchedInputs) {
  Tensor a(Shape(1, 1, 1, 2), DType::kQUInt8);
  a.set_quant_params(0.1f, 0);
  a.Data<uint8_t>()[0] = 10;  // real 1.0
  a.Data<uint8_t>()[1] = 20;  // real 2.0
  Tensor b(Shape(1, 1, 1, 2), DType::kQUInt8);
  b.set_quant_params(0.2f, 10);
  b.Data<uint8_t>()[0] = 20;  // real 2.0
  b.Data<uint8_t>()[1] = 30;  // real 4.0
  Tensor out(Shape(1, 2, 1, 2), DType::kQUInt8);
  out.set_quant_params(0.1f, 0);
  ConcatChannels({&a, &b}, out);
  EXPECT_EQ(out.Data<uint8_t>()[0], 10);
  EXPECT_EQ(out.Data<uint8_t>()[1], 20);
  EXPECT_EQ(out.Data<uint8_t>()[2], 20);  // 2.0 / 0.1
  EXPECT_EQ(out.Data<uint8_t>()[3], 40);  // 4.0 / 0.1
}

TEST(SoftmaxTest, NormalizesAndOrdersF32) {
  Tensor in(Shape(1, 4, 1, 1), DType::kF32);
  in.Data<float>()[0] = 1.0f;
  in.Data<float>()[1] = 3.0f;
  in.Data<float>()[2] = 2.0f;
  in.Data<float>()[3] = -1.0f;
  Tensor out(in.shape(), DType::kF32);
  Softmax(in, out);
  float sum = 0.0f;
  for (int i = 0; i < 4; ++i) {
    sum += out.Data<float>()[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(out.Data<float>()[1], out.Data<float>()[2]);
  EXPECT_GT(out.Data<float>()[2], out.Data<float>()[0]);
  EXPECT_GT(out.Data<float>()[0], out.Data<float>()[3]);
}

TEST(SoftmaxTest, LargeLogitsDoNotOverflow) {
  Tensor in(Shape(1, 3, 1, 1), DType::kF32);
  in.Data<float>()[0] = 1000.0f;
  in.Data<float>()[1] = 999.0f;
  in.Data<float>()[2] = 0.0f;
  Tensor out(in.shape(), DType::kF32);
  Softmax(in, out);
  EXPECT_FALSE(std::isnan(out.Data<float>()[0]));
  EXPECT_GT(out.Data<float>()[0], out.Data<float>()[1]);
  EXPECT_NEAR(out.Data<float>()[2], 0.0f, 1e-6f);
}

TEST(SoftmaxTest, AcceptsQuantizedInput) {
  Tensor in(Shape(1, 3, 1, 1), DType::kQUInt8);
  in.set_quant_params(0.05f, 0);
  in.Data<uint8_t>()[0] = 100;
  in.Data<uint8_t>()[1] = 50;
  in.Data<uint8_t>()[2] = 0;
  Tensor out(in.shape(), DType::kF32);
  Softmax(in, out);
  EXPECT_GT(out.Data<float>()[0], out.Data<float>()[1]);
  EXPECT_GT(out.Data<float>()[1], out.Data<float>()[2]);
}


TEST(EltwiseAddTest, F32SumsAndRelus) {
  Tensor a(Shape(1, 2, 2, 2), DType::kF32);
  Tensor b(Shape(1, 2, 2, 2), DType::kF32);
  FillUniform(a, 40, -1.0f, 1.0f);
  FillUniform(b, 41, -1.0f, 1.0f);
  Tensor out(a.shape(), DType::kF32);
  EltwiseAddF32(a, b, out, /*relu=*/false);
  for (int64_t i = 0; i < out.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(out.Data<float>()[i], a.Data<float>()[i] + b.Data<float>()[i]);
  }
  Tensor out_relu(a.shape(), DType::kF32);
  EltwiseAddF32(a, b, out_relu, /*relu=*/true);
  for (int64_t i = 0; i < out.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(out_relu.Data<float>()[i], std::max(out.Data<float>()[i], 0.0f));
  }
}

TEST(EltwiseAddTest, ChannelSlicesCompose) {
  Tensor a(Shape(1, 6, 4, 4), DType::kF32);
  Tensor b(Shape(1, 6, 4, 4), DType::kF32);
  FillUniform(a, 42);
  FillUniform(b, 43);
  Tensor full(a.shape(), DType::kF32);
  EltwiseAddF32(a, b, full, true);
  Tensor split_out(a.shape(), DType::kF32);
  EltwiseAddF32(a, b, split_out, true, 0, 4);
  EltwiseAddF32(a, b, split_out, true, 4, 6);
  EXPECT_EQ(MaxAbsDiff(full, split_out), 0.0f);
}

TEST(EltwiseAddTest, QU8RescalesOperands) {
  Tensor a(Shape(1, 1, 1, 2), DType::kQUInt8);
  a.set_quant_params(0.1f, 0);
  a.Data<uint8_t>()[0] = 10;  // 1.0
  a.Data<uint8_t>()[1] = 30;  // 3.0
  Tensor b(Shape(1, 1, 1, 2), DType::kQUInt8);
  b.set_quant_params(0.2f, 10);
  b.Data<uint8_t>()[0] = 20;  // 2.0
  b.Data<uint8_t>()[1] = 0;   // -2.0
  Tensor out(a.shape(), DType::kQUInt8);
  out.set_quant_params(0.5f, 0);
  EltwiseAddQU8(a, b, out, /*relu=*/false);
  EXPECT_EQ(out.Data<uint8_t>()[0], 6);  // 3.0 / 0.5
  EXPECT_EQ(out.Data<uint8_t>()[1], 2);  // 1.0 / 0.5
}

TEST(EltwiseAddTest, F16TracksF32) {
  Tensor a(Shape(1, 2, 3, 3), DType::kF32);
  Tensor b(Shape(1, 2, 3, 3), DType::kF32);
  FillUniform(a, 44, -2.0f, 2.0f);
  FillUniform(b, 45, -2.0f, 2.0f);
  Tensor ref(a.shape(), DType::kF32);
  EltwiseAddF32(a, b, ref, true);
  Tensor out16(a.shape(), DType::kF16);
  EltwiseAddF16(ToF16Tensor(a), ToF16Tensor(b), out16, true);
  EXPECT_LT(MaxAbsDiff(F16ToF32Tensor(out16), ref), 0.01f);
}

}  // namespace
}  // namespace ulayer
