#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/reference.h"
#include "baselines/baselines.h"
#include "kernels/conv.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

TEST(PerChannelQuantTest, RoundTripTighterThanPerTensor) {
  // A filter tensor whose channels have wildly different ranges: per-channel
  // quantization must reconstruct it much more accurately.
  Tensor f(Shape(4, 2, 3, 3), DType::kF32);
  Rng rng(1);
  for (int64_t oc = 0; oc < 4; ++oc) {
    const float range = 0.01f * static_cast<float>(1 << (2 * oc));  // 0.01 .. 0.64
    float* p = f.Data<float>() + oc * 18;
    for (int i = 0; i < 18; ++i) {
      p[i] = rng.Uniform(-range, range);
    }
  }
  // Per-tensor.
  MinMaxObserver obs;
  obs.Observe(f);
  const Tensor q_tensor = QuantizeTensor(f, obs.Params());
  const float per_tensor_err = RmsDiff(DequantizeTensor(q_tensor), f);
  // Per-channel. (RMS, not max: the widest channel bounds the max error of
  // both schemes identically; per-channel wins on the narrow channels.)
  PerChannelParams params;
  const Tensor q_channel = QuantizeFiltersPerChannel(f, params);
  const float per_channel_err = RmsDiff(DequantizeFiltersPerChannel(q_channel, params), f);
  EXPECT_LT(per_channel_err, per_tensor_err * 0.65f)
      << "per-channel ranges should be much tighter on skewed channels";
}

TEST(PerChannelQuantTest, ParamsPerChannelCoverEachRange) {
  Tensor f(Shape(3, 1, 2, 2), DType::kF32);
  for (int64_t oc = 0; oc < 3; ++oc) {
    float* p = f.Data<float>() + oc * 4;
    for (int i = 0; i < 4; ++i) {
      p[i] = static_cast<float>(oc + 1) * (i % 2 == 0 ? 1.0f : -1.0f);
    }
  }
  PerChannelParams params;
  QuantizeFiltersPerChannel(f, params);
  ASSERT_EQ(params.channels.size(), 3u);
  EXPECT_LT(params.channels[0].scale, params.channels[2].scale);
}

TEST(PerChannelConvTest, MatchesF32CloserThanPerTensor) {
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  Tensor in(Shape(1, 4, 8, 8), DType::kF32);
  FillUniform(in, 10, -1.0f, 1.0f);
  // Skewed filter channel ranges (where per-channel shines).
  Tensor w(Shape(6, 4, 3, 3), DType::kF32);
  Rng rng(11);
  for (int64_t oc = 0; oc < 6; ++oc) {
    const float range = oc < 3 ? 0.02f : 0.5f;
    float* pw = w.Data<float>() + oc * 36;
    for (int i = 0; i < 36; ++i) {
      pw[i] = rng.Uniform(-range, range);
    }
  }
  Tensor bias;

  Tensor ref(Shape(1, 6, 8, 8), DType::kF32);
  Conv2DF32(in, w, bias, p, ref);
  MinMaxObserver out_obs;
  out_obs.Observe(ref);
  const QuantParams out_qp = out_obs.Params();
  const Tensor in_q = QuantizeTensor(in, ChooseQuantParams(-1.0f, 1.0f));

  // Per-tensor path.
  MinMaxObserver w_obs;
  w_obs.Observe(w);
  const Tensor w_q = QuantizeTensor(w, w_obs.Params());
  Tensor out_pt(ref.shape(), DType::kQUInt8);
  out_pt.set_quant_params(out_qp.scale, out_qp.zero_point);
  Conv2DQU8(in_q, w_q, bias, p, out_pt);

  // Per-channel path.
  PerChannelParams params;
  const Tensor w_qc = QuantizeFiltersPerChannel(w, params);
  Tensor out_pc(ref.shape(), DType::kQUInt8);
  out_pc.set_quant_params(out_qp.scale, out_qp.zero_point);
  Conv2DQU8PerChannel(in_q, w_qc, params, bias, p, out_pc);

  const float err_pt = RmsDiff(DequantizeTensor(out_pt), ref);
  const float err_pc = RmsDiff(DequantizeTensor(out_pc), ref);
  EXPECT_LT(err_pc, err_pt) << "per-channel should beat per-tensor on skewed filters";
}

TEST(PerChannelConvTest, ChannelSlicesComposeExactly) {
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  Tensor in(Shape(1, 3, 6, 6), DType::kF32);
  Tensor w(Shape(5, 3, 3, 3), DType::kF32);
  FillUniform(in, 20, -1.0f, 1.0f);
  FillUniform(w, 21, -0.5f, 0.5f);
  const Tensor in_q = QuantizeTensor(in, ChooseQuantParams(-1.0f, 1.0f));
  PerChannelParams params;
  const Tensor w_q = QuantizeFiltersPerChannel(w, params);
  const QuantParams out_qp = ChooseQuantParams(-4.0f, 4.0f);
  Tensor bias;
  Tensor full(Shape(1, 5, 6, 6), DType::kQUInt8);
  full.set_quant_params(out_qp.scale, out_qp.zero_point);
  Conv2DQU8PerChannel(in_q, w_q, params, bias, p, full);
  Tensor split_out(Shape(1, 5, 6, 6), DType::kQUInt8);
  split_out.set_quant_params(out_qp.scale, out_qp.zero_point);
  Conv2DQU8PerChannel(in_q, w_q, params, bias, p, split_out, 0, 2);
  Conv2DQU8PerChannel(in_q, w_q, params, bias, p, split_out, 2, 5);
  EXPECT_EQ(std::memcmp(full.raw(), split_out.raw(), static_cast<size_t>(full.SizeBytes())), 0);
}

TEST(PerChannelEndToEnd, LeNetRunsWithPerChannelWeights) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  ExecConfig cfg = ExecConfig::ProcessorFriendly();
  cfg.per_channel_weights = true;
  PreparedModel pm(m, cfg);
  std::vector<Tensor> calib;
  for (int i = 0; i < 3; ++i) {
    Tensor t(Shape(1, 1, 28, 28), DType::kF32);
    FillUniform(t, 100 + static_cast<uint64_t>(i), -1.0f, 1.0f);
    calib.push_back(std::move(t));
  }
  pm.Calibrate(calib);
  Executor ex(pm, MakeExynos7420());
  Tensor in(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(in, 200, -1.0f, 1.0f);
  const RunResult r = ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kCpu), &in);
  ASSERT_TRUE(r.output.has_value());
  const auto ref = ForwardF32(m, in);
  // Per-channel weights should track F32 at least as well as per-tensor.
  ExecConfig cfg_pt = ExecConfig::ProcessorFriendly();
  PreparedModel pm_pt(m, cfg_pt);
  pm_pt.Calibrate(calib);
  Executor ex_pt(pm_pt, MakeExynos7420());
  const RunResult r_pt = ex_pt.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kCpu), &in);
  EXPECT_LE(RmsDiff(*r.output, ref.back()), RmsDiff(*r_pt.output, ref.back()) * 1.2f);
}

}  // namespace
}  // namespace ulayer
