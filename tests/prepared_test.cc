#include "core/prepared.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/executor.h"
#include "core/partitioner.h"
#include "core/predictor.h"
#include "core/reference.h"
#include "kernels/pack.h"
#include "soc/timing.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

std::vector<Tensor> MakeInputs(const Shape& shape, int count, uint64_t seed) {
  std::vector<Tensor> v;
  for (int i = 0; i < count; ++i) {
    Tensor t(shape, DType::kF32);
    FillUniform(t, seed + static_cast<uint64_t>(i), -1.0f, 1.0f);
    v.push_back(std::move(t));
  }
  return v;
}

TEST(ReferenceTest, ForwardF32ProducesProbabilities) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  Tensor in(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(in, 1, 0.0f, 1.0f);
  const auto act = ForwardF32(m, in);
  const Tensor& probs = act.back();
  EXPECT_EQ(probs.shape(), Shape(1, 10, 1, 1));
  float sum = 0.0f;
  for (int i = 0; i < 10; ++i) {
    const float p = probs.Data<float>()[i];
    EXPECT_GE(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(ReferenceTest, ArgmaxAndTopK) {
  Tensor t(Shape(1, 5, 1, 1), DType::kF32);
  const float vals[] = {0.1f, 0.5f, 0.05f, 0.3f, 0.05f};
  for (int i = 0; i < 5; ++i) {
    t.Data<float>()[i] = vals[i];
  }
  EXPECT_EQ(Argmax(t), 1);
  const auto top3 = TopK(t, 3);
  EXPECT_EQ(top3, (std::vector<int64_t>{1, 3, 0}));
}

TEST(PreparedTest, F32ModeKeepsWeightsIntact) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const PreparedModel pm(m, ExecConfig::AllF32());
  for (const auto& [id, w] : m.weights) {
    EXPECT_EQ(MaxAbsDiff(pm.Filters(id), w.filters), 0.0f);
  }
}

TEST(PreparedTest, F16ModeConvertsWeights) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const PreparedModel pm(m, ExecConfig::AllF16());
  const int id = m.weights.begin()->first;
  EXPECT_EQ(pm.Filters(id).dtype(), DType::kF16);
  const Tensor back = F16ToF32Tensor(pm.Filters(id));
  EXPECT_LT(MaxAbsDiff(back, m.weights.at(id).filters), 0.01f);
}

TEST(PreparedTest, QU8ModeQuantizesWeightsPerLayer) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const PreparedModel pm(m, ExecConfig::AllQU8());
  for (const auto& [id, w] : m.weights) {
    const Tensor& q = pm.Filters(id);
    EXPECT_EQ(q.dtype(), DType::kQUInt8);
    // Round trip within half a scale step.
    const Tensor back = DequantizeTensor(q);
    EXPECT_LE(MaxAbsDiff(back, w.filters), q.scale() * 0.5f + 1e-6f);
  }
}

TEST(PreparedTest, CalibrationSetsActivationRangesAndBiases) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  EXPECT_FALSE(pm.calibrated());
  pm.Calibrate(MakeInputs(Shape(1, 1, 28, 28), 4, 77));
  EXPECT_TRUE(pm.calibrated());
  // Every conv/fc node now has a usable activation range and an int32 bias.
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kConv || n.desc.kind == LayerKind::kFullyConnected) {
      EXPECT_GT(pm.ActivationParams(n.id).scale, 0.0f) << n.desc.name;
      EXPECT_EQ(pm.BiasI32(n.id).dtype(), DType::kInt32);
      EXPECT_EQ(pm.BiasI32(n.id).NumElements(), n.out_shape.c);
    }
  }
}

TEST(PreparedTest, CalibratedRangesCoverObservedActivations) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  const auto inputs = MakeInputs(Shape(1, 1, 28, 28), 3, 5);
  pm.Calibrate(inputs);
  // Re-run the reference on a calibration input: every activation must fall
  // inside the calibrated [min, max] of its node.
  const auto act = ForwardF32(m, inputs[0]);
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kSoftmax || n.desc.kind == LayerKind::kInput) {
      continue;
    }
    const QuantParams qp = pm.ActivationParams(n.id);
    const Tensor& a = act[static_cast<size_t>(n.id)];
    for (int64_t i = 0; i < a.NumElements(); ++i) {
      const float v = a.Data<float>()[i];
      const float lo = qp.Dequantize(0);
      const float hi = qp.Dequantize(255);
      EXPECT_GE(v, lo - qp.scale);
      EXPECT_LE(v, hi + qp.scale);
    }
  }
}

TEST(PreparedTest, MakeActivationUsesStorageDtype) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  pm.Calibrate(MakeInputs(Shape(1, 1, 28, 28), 1, 9));
  const Graph& g = m.graph;
  for (const Node& n : g.nodes()) {
    const Tensor t = pm.MakeActivation(n.id);
    if (n.desc.kind == LayerKind::kSoftmax) {
      EXPECT_EQ(t.dtype(), DType::kF32);
    } else {
      EXPECT_EQ(t.dtype(), DType::kQUInt8);
    }
    EXPECT_EQ(t.shape(), n.out_shape);
  }
}

// Prepare-time kernel caches (DESIGN.md Section 9/13): under the
// processor-friendly config every dense conv layer must come out of the
// constructor with its packed filter panels, F16 operand caches, and filter
// row sums already built — the conv kernels rely on these cache hits to skip
// per-call packing/dequantization. FC layers must NOT carry packed panels
// (GEMV gains nothing and classifier matrices dominate model size), and
// depthwise convs use neither panels nor row sums.
TEST(PreparedTest, ZooConvLayersHitPrepareTimeCaches) {
  struct ZooEntry {
    const char* name;
    Model model;
  };
  ZooEntry zoo[] = {
      {"lenet5", MakeLeNet5()},
      {"squeezenet", MakeSqueezeNetV11()},
      {"mobilenet", MakeMobileNetV1()},
      {"googlenet", MakeGoogLeNet()},
  };
  for (ZooEntry& z : zoo) {
    z.model.MaterializeWeights();
    const PreparedModel pm(z.model, ExecConfig::ProcessorFriendly());
    int convs = 0, fcs = 0;
    for (const Node& n : z.model.graph.nodes()) {
      switch (n.desc.kind) {
        case LayerKind::kConv: {
          ++convs;
          EXPECT_NE(pm.PackedFiltersQU8Ptr(n.id), nullptr)
              << z.name << ":" << n.desc.name;
          // GPU compute is F16 under ProcessorFriendly, so the via-F16
          // operand caches (and their packed form) must exist too.
          EXPECT_NE(pm.FiltersF16Ptr(n.id), nullptr) << z.name << ":" << n.desc.name;
          EXPECT_NE(pm.PackedFiltersF16Ptr(n.id), nullptr)
              << z.name << ":" << n.desc.name;
          EXPECT_NE(pm.FilterRowSumPtr(n.id), nullptr) << z.name << ":" << n.desc.name;
          if (!z.model.weights.at(n.id).bias.empty()) {
            EXPECT_NE(pm.BiasF16Ptr(n.id), nullptr) << z.name << ":" << n.desc.name;
          }
          break;
        }
        case LayerKind::kFullyConnected:
          ++fcs;
          EXPECT_EQ(pm.PackedFiltersQU8Ptr(n.id), nullptr)
              << z.name << ":" << n.desc.name;
          EXPECT_EQ(pm.PackedFiltersF16Ptr(n.id), nullptr)
              << z.name << ":" << n.desc.name;
          // Row sums and F16 operands are still cached for FC (the GEMM
          // zero-point hoist and the GPU path both want them).
          EXPECT_NE(pm.FilterRowSumPtr(n.id), nullptr) << z.name << ":" << n.desc.name;
          EXPECT_NE(pm.FiltersF16Ptr(n.id), nullptr) << z.name << ":" << n.desc.name;
          break;
        case LayerKind::kDepthwiseConv:
          EXPECT_EQ(pm.PackedFiltersQU8Ptr(n.id), nullptr)
              << z.name << ":" << n.desc.name;
          EXPECT_EQ(pm.FilterRowSumPtr(n.id), nullptr) << z.name << ":" << n.desc.name;
          break;
        default:
          break;
      }
    }
    EXPECT_GT(convs, 0) << z.name;
  }
}

// The packed QU8 panels cached at prepare time must be byte-identical to what
// PackRowPanels produces from the quantized filter tensor — kernels treat the
// cache as a drop-in replacement for packing on the fly.
TEST(PreparedTest, PackedPanelsMatchOnTheFlyPacking) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind != LayerKind::kConv) {
      continue;
    }
    const Tensor& qf = pm.Filters(n.id);
    const Shape& fs = qf.shape();
    const int64_t k = fs.c * fs.h * fs.w;
    std::vector<uint8_t> expect(static_cast<size_t>(PackedPanelElems(fs.n, k)));
    PackRowPanels(qf.Data<uint8_t>(), fs.n, k, expect.data());
    const uint8_t* cached = pm.PackedFiltersQU8Ptr(n.id);
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(std::memcmp(cached, expect.data(), expect.size()), 0) << n.desc.name;
  }
}

// With the scratch arena disabled the constructor must skip every cache and
// the accessors all report misses (kernels fall back to per-call work).
TEST(PreparedTest, CachesAbsentWithoutScratchArena) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  ExecConfig cfg = ExecConfig::ProcessorFriendly();
  cfg.scratch_arena = false;
  const PreparedModel pm(m, cfg);
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind != LayerKind::kConv && n.desc.kind != LayerKind::kFullyConnected) {
      continue;
    }
    EXPECT_EQ(pm.PackedFiltersQU8Ptr(n.id), nullptr) << n.desc.name;
    EXPECT_EQ(pm.PackedFiltersF16Ptr(n.id), nullptr) << n.desc.name;
    EXPECT_EQ(pm.FiltersF16Ptr(n.id), nullptr) << n.desc.name;
    EXPECT_EQ(pm.FilterRowSumPtr(n.id), nullptr) << n.desc.name;
    EXPECT_EQ(pm.RequantPtr(n.id), nullptr) << n.desc.name;
  }
}

TEST(PreparedTest, PrepareInputQuantizesWithInputParams) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  const auto inputs = MakeInputs(Shape(1, 1, 28, 28), 2, 13);
  pm.Calibrate(inputs);
  const Tensor q = pm.PrepareInput(inputs[0]);
  EXPECT_EQ(q.dtype(), DType::kQUInt8);
  const Tensor back = DequantizeTensor(q);
  EXPECT_LT(MaxAbsDiff(back, inputs[0]), q.scale());
}

// The thread-safety contract (core/prepared.h): after construction and
// Calibrate, a PreparedModel is deeply const and may be shared by any number
// of concurrent reader threads, each running its own Executor — exactly what
// the serving layer's lane pool does. Run under TSan in CI: any lazily
// mutated cache inside the "const" surface shows up as a data race here.
TEST(PreparedTest, ConstSharedAcrossConcurrentExecutors) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const ExecConfig config = ExecConfig::ProcessorFriendly();  // All caches live.
  PreparedModel pm(m, config);
  pm.Calibrate(MakeInputs(Shape(1, 1, 28, 28), 2, 13));
  const PreparedModel& shared = pm;  // Readers get the const view.

  const TimingModel timing{MakeExynos7420()};
  const LatencyPredictor predictor(timing, config, {&m.graph});
  const Plan plan = Partitioner(m.graph, timing, config, predictor).Build();

  constexpr int kReaders = 4;
  constexpr int kRunsEach = 3;
  std::vector<std::vector<float>> outputs(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Executor exec(shared, MakeExynos7420());  // One executor per thread.
      Tensor in(Shape(1, 1, 28, 28), DType::kF32);
      FillUniform(in, 77);  // Same input everywhere: outputs must agree.
      for (int run = 0; run < kRunsEach; ++run) {
        const RunResult r = exec.Run(plan, &in);
        ASSERT_TRUE(r.output.has_value());
        const float* p = r.output->Data<float>();
        outputs[static_cast<size_t>(t)].assign(p, p + r.output->shape().NumElements());
      }
    });
  }
  for (std::thread& th : readers) {
    th.join();
  }
  for (int t = 1; t < kReaders; ++t) {
    EXPECT_EQ(outputs[static_cast<size_t>(t)], outputs[0]) << "reader " << t;
  }
}

}  // namespace
}  // namespace ulayer
