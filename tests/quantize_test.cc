#include "quant/quantize.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/error.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

TEST(QuantParamsTest, ChooseCoversRangeWithZeroExact) {
  const QuantParams qp = ChooseQuantParams(-1.0f, 3.0f);
  // 0.0 must quantize exactly (required for zero padding).
  const uint8_t zero_q = qp.Quantize(0.0f);
  EXPECT_EQ(zero_q, qp.zero_point);
  EXPECT_FLOAT_EQ(qp.Dequantize(zero_q), 0.0f);
  // Range endpoints land on the code extremes (within scale/2).
  EXPECT_NEAR(qp.Dequantize(qp.Quantize(-1.0f)), -1.0f, qp.scale);
  EXPECT_NEAR(qp.Dequantize(qp.Quantize(3.0f)), 3.0f, qp.scale);
}

TEST(QuantParamsTest, AllPositiveRangeWidensToIncludeZero) {
  const QuantParams qp = ChooseQuantParams(2.0f, 6.0f);
  EXPECT_EQ(qp.zero_point, 0);
  EXPECT_FLOAT_EQ(qp.scale, 6.0f / 255.0f);
}

TEST(QuantParamsTest, AllNegativeRangeWidensToIncludeZero) {
  const QuantParams qp = ChooseQuantParams(-5.0f, -1.0f);
  EXPECT_EQ(qp.zero_point, 255);
  EXPECT_FLOAT_EQ(qp.scale, 5.0f / 255.0f);
}

TEST(QuantParamsTest, DegenerateRange) {
  const QuantParams qp = ChooseQuantParams(0.0f, 0.0f);
  EXPECT_EQ(qp.Quantize(0.0f), qp.zero_point);
}

TEST(QuantParamsTest, QuantizeSaturates) {
  const QuantParams qp = ChooseQuantParams(-1.0f, 1.0f);
  EXPECT_EQ(qp.Quantize(100.0f), 255);
  EXPECT_EQ(qp.Quantize(-100.0f), 0);
}

TEST(QuantizeTensorTest, RoundTripErrorBoundedByHalfScale) {
  Tensor t(Shape(1, 4, 8, 8), DType::kF32);
  FillUniform(t, 11, -2.0f, 2.0f);
  const QuantParams qp = ChooseQuantParams(-2.0f, 2.0f);
  const Tensor q = QuantizeTensor(t, qp);
  EXPECT_EQ(q.dtype(), DType::kQUInt8);
  const Tensor back = DequantizeTensor(q);
  EXPECT_LE(MaxAbsDiff(t, back), qp.scale * 0.5f + 1e-6f);
}

TEST(QuantizeTensorTest, ParamsEmbeddedInTensor) {
  Tensor t(Shape(1, 1, 2, 2), DType::kF32);
  FillUniform(t, 3, -1.0f, 1.0f);
  const QuantParams qp = ChooseQuantParams(-1.0f, 1.0f);
  const Tensor q = QuantizeTensor(t, qp);
  EXPECT_FLOAT_EQ(q.scale(), qp.scale);
  EXPECT_EQ(q.zero_point(), qp.zero_point);
}

TEST(F16TensorTest, RoundTripF16) {
  Tensor t(Shape(1, 2, 4, 4), DType::kF32);
  FillUniform(t, 5, -10.0f, 10.0f);
  const Tensor h = ToF16Tensor(t);
  EXPECT_EQ(h.dtype(), DType::kF16);
  const Tensor back = F16ToF32Tensor(h);
  // Relative error bounded by 2^-11.
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    const float orig = t.Data<float>()[i];
    EXPECT_NEAR(back.Data<float>()[i], orig, std::fabs(orig) / 1024.0f + 1e-7f);
  }
}

TEST(RequantTest, ScaleDecompositionReconstructs) {
  for (const double m : {0.5, 0.25, 0.1, 0.0123, 0.9999, 3e-5}) {
    const RequantScale rs = ComputeRequantScale(m);
    EXPECT_GE(rs.multiplier, 1 << 30);
    const double recon =
        static_cast<double>(rs.multiplier) / (1ll << 31) * std::pow(2.0, -rs.shift);
    EXPECT_NEAR(recon, m, m * 1e-8);
  }
}

TEST(RequantTest, MultiplierAtLeastOneUsesLeftShift) {
  // M >= 1 arises when in_scale * w_scale > out_scale (e.g. a layer whose
  // output range collapses). The decomposition must produce a negative
  // shift (left shift) and still reconstruct, instead of tripping an assert
  // (debug) or fabricating a garbage shift (release).
  for (const double m : {1.0, 1.5, 2.5, 7.9, 100.0, 1e6}) {
    const RequantScale rs = ComputeRequantScale(m);
    EXPECT_GE(rs.multiplier, 1 << 30);
    EXPECT_LT(rs.shift, 0) << "m=" << m;
    const double recon =
        static_cast<double>(rs.multiplier) / (1ll << 31) * std::pow(2.0, -rs.shift);
    EXPECT_NEAR(recon, m, m * 1e-8);
  }
}

TEST(RequantTest, RequantizeOneHandlesMultiplierAtLeastOne) {
  Rng rng(123);
  for (const double m : {1.0, 1.75, 3.5, 12.0}) {
    const RequantScale rs = ComputeRequantScale(m);
    for (int i = 0; i < 2000; ++i) {
      const int32_t acc = static_cast<int32_t>(rng.Below(512)) - 256;
      const int32_t zp = 128;
      const double expect = std::round(acc * m) + zp;
      const double clamped = std::min(255.0, std::max(0.0, expect));
      EXPECT_NEAR(RequantizeOne(acc, rs, zp), clamped, 1.0) << "acc=" << acc << " m=" << m;
    }
  }
}

TEST(RequantTest, InvalidMultipliersThrow) {
  EXPECT_THROW(ComputeRequantScale(0.0), Error);
  EXPECT_THROW(ComputeRequantScale(-0.5), Error);
  EXPECT_THROW(ComputeRequantScale(std::numeric_limits<double>::infinity()), Error);
  EXPECT_THROW(ComputeRequantScale(std::numeric_limits<double>::quiet_NaN()), Error);
  // Magnitudes outside the representable shift range are errors, not UB.
  EXPECT_THROW(ComputeRequantScale(1e300), Error);
  EXPECT_THROW(ComputeRequantScale(1e-300), Error);
  // The typed error carries a stable code callers can route on.
  try {
    ComputeRequantScale(0.0);
    FAIL() << "expected ulayer::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kQuantization);
  }
}

TEST(RequantTest, RoundingDoublingHighMulMatchesReference) {
  // SQRDMULH reference: round(a*b*2 / 2^32).
  EXPECT_EQ(SaturatingRoundingDoublingHighMul(1 << 30, 1 << 30), 1 << 29);
  EXPECT_EQ(SaturatingRoundingDoublingHighMul(INT32_MIN, INT32_MIN), INT32_MAX);  // Saturation.
  EXPECT_EQ(SaturatingRoundingDoublingHighMul(0, 12345), 0);
}

TEST(RequantTest, RoundingDivideByPOT) {
  EXPECT_EQ(RoundingDivideByPOT(8, 2), 2);
  EXPECT_EQ(RoundingDivideByPOT(10, 2), 3);   // 2.5 rounds away from zero.
  EXPECT_EQ(RoundingDivideByPOT(9, 2), 2);    // 2.25 rounds down.
  EXPECT_EQ(RoundingDivideByPOT(-10, 2), -3);
  EXPECT_EQ(RoundingDivideByPOT(-9, 2), -2);
  EXPECT_EQ(RoundingDivideByPOT(7, 0), 7);
}

TEST(RequantTest, RequantizeOneMatchesFloatReference) {
  // Property: the fixed-point pipeline tracks round(acc * M) + zp within 1.
  Rng rng(99);
  const double multipliers[] = {0.37, 0.004, 0.81};
  for (const double m : multipliers) {
    const RequantScale rs = ComputeRequantScale(m);
    for (int i = 0; i < 2000; ++i) {
      const int32_t acc = static_cast<int32_t>(rng.Below(200000)) - 100000;
      const int32_t zp = 128;
      const double expect = std::round(acc * m) + zp;
      const double clamped = std::min(255.0, std::max(0.0, expect));
      EXPECT_NEAR(RequantizeOne(acc, rs, zp), clamped, 1.0) << "acc=" << acc << " m=" << m;
    }
  }
}

TEST(ObserverTest, TracksMinMax) {
  MinMaxObserver obs;
  EXPECT_FALSE(obs.seen());
  obs.Observe(1.0f);
  obs.Observe(-3.0f);
  obs.Observe(2.0f);
  EXPECT_TRUE(obs.seen());
  EXPECT_FLOAT_EQ(obs.min_val(), -3.0f);
  EXPECT_FLOAT_EQ(obs.max_val(), 2.0f);
}

TEST(ObserverTest, ObservesTensorsAndShrinks) {
  Tensor t(Shape(1, 1, 4, 4), DType::kF32);
  FillUniform(t, 21, -4.0f, 4.0f);
  MinMaxObserver obs;
  obs.Observe(t);
  const float old_max = obs.max_val();
  obs.ShrinkRange(0.5f);
  EXPECT_FLOAT_EQ(obs.max_val(), old_max * 0.5f);
}

}  // namespace
}  // namespace ulayer
