#include "ucl/ucl.h"

#include <gtest/gtest.h>

namespace ulayer::ucl {
namespace {

Context MakeCtx() { return Context(MakeExynos7420()); }

TEST(DeviceTest, ScheduleAdvancesClockAndTracksBusy) {
  Context ctx = MakeCtx();
  Device& cpu = ctx.device(ProcKind::kCpu);
  EXPECT_DOUBLE_EQ(cpu.now_us(), 0.0);
  const double end = cpu.Schedule(0.0, 100.0, DType::kQUInt8, 4096.0);
  EXPECT_DOUBLE_EQ(end, 100.0);
  EXPECT_DOUBLE_EQ(cpu.BusyUs(DType::kQUInt8), 100.0);
  EXPECT_DOUBLE_EQ(cpu.BusyUs(DType::kF32), 0.0);
  EXPECT_DOUBLE_EQ(cpu.TotalBytes(), 4096.0);
}

TEST(DeviceTest, ReadyTimeDefersStart) {
  Context ctx = MakeCtx();
  Device& cpu = ctx.device(ProcKind::kCpu);
  cpu.Schedule(0.0, 10.0, DType::kF32, 0.0);
  // Ready at 50 > now (10): starts at 50.
  EXPECT_DOUBLE_EQ(cpu.Schedule(50.0, 5.0, DType::kF32, 0.0), 55.0);
  // Ready in the past: starts at queue-free time.
  EXPECT_DOUBLE_EQ(cpu.Schedule(0.0, 5.0, DType::kF32, 0.0), 60.0);
}

TEST(QueueTest, EnqueueAddsLaunchOverhead) {
  Context ctx = MakeCtx();
  const Event e = ctx.queue(ProcKind::kGpu).EnqueueKernel(100.0, DType::kF16, 0.0).event;
  EXPECT_DOUBLE_EQ(e.complete_us, ctx.soc().gpu.kernel_launch_us + 100.0);
}

TEST(QueueTest, InOrderExecutionSerializes) {
  Context ctx = MakeCtx();
  CommandQueue& q = ctx.queue(ProcKind::kCpu);
  const double launch = ctx.soc().cpu.kernel_launch_us;
  const Event a = q.EnqueueKernel(10.0, DType::kF32, 0.0).event;
  const Event b = q.EnqueueKernel(10.0, DType::kF32, 0.0).event;
  EXPECT_DOUBLE_EQ(a.complete_us, launch + 10.0);
  EXPECT_DOUBLE_EQ(b.complete_us, 2 * (launch + 10.0));
}

TEST(QueueTest, CrossQueueDependencyWaits) {
  Context ctx = MakeCtx();
  const Event gpu_ev = ctx.queue(ProcKind::kGpu).EnqueueKernel(500.0, DType::kF16, 0.0).event;
  // CPU kernel depending on the GPU result starts only after it completes.
  const Event cpu_ev =
      ctx.queue(ProcKind::kCpu).EnqueueKernel(10.0, DType::kF32, 0.0, {gpu_ev}).event;
  EXPECT_DOUBLE_EQ(cpu_ev.complete_us,
                   gpu_ev.complete_us + ctx.soc().cpu.kernel_launch_us + 10.0);
}

TEST(QueueTest, IndependentQueuesOverlap) {
  // The core claim behind cooperative execution: CPU and GPU timelines
  // advance independently, so total time is max, not sum.
  Context ctx = MakeCtx();
  ctx.queue(ProcKind::kCpu).EnqueueKernel(1000.0, DType::kQUInt8, 0.0);
  ctx.queue(ProcKind::kGpu).EnqueueKernel(800.0, DType::kF16, 0.0);
  EXPECT_DOUBLE_EQ(ctx.NowUs(), 1000.0 + ctx.soc().cpu.kernel_launch_us);
}

TEST(QueueTest, EnqueueKernelAtHonorsReadyTime) {
  Context ctx = MakeCtx();
  const Event e =
      ctx.queue(ProcKind::kGpu).EnqueueKernelAt(250.0, 100.0, DType::kF16, 0.0).event;
  EXPECT_DOUBLE_EQ(e.complete_us, 250.0 + ctx.soc().gpu.kernel_launch_us + 100.0);
}

TEST(BufferTest, ZeroCopyMapCostsCacheMaintenanceOnly) {
  Context ctx = MakeCtx();
  auto buf = ctx.CreateBuffer(1 << 20, MemFlag::kAllocHostPtr);
  const Event e = ctx.queue(ProcKind::kGpu).EnqueueMap(*buf, MapAccess::kRead).event;
  EXPECT_DOUBLE_EQ(e.complete_us, ctx.soc().map_us);
}

TEST(BufferTest, CopyModeMapPaysBandwidth) {
  Context ctx = MakeCtx();
  const int64_t size = 4 << 20;
  auto buf = ctx.CreateBuffer(size, MemFlag::kCopyMode);
  const Event e = ctx.queue(ProcKind::kGpu).EnqueueMap(*buf, MapAccess::kRead).event;
  const double copy_us = static_cast<double>(size) / (ctx.soc().copy_gb_per_s * 1e3);
  EXPECT_DOUBLE_EQ(e.complete_us, ctx.soc().map_us + copy_us);
  EXPECT_GT(e.complete_us, 100.0);  // Copies are expensive; zero-copy isn't.
}

TEST(BufferTest, HostPointerIsStableAndSized) {
  Context ctx = MakeCtx();
  auto buf = ctx.CreateBuffer(256, MemFlag::kAllocHostPtr);
  EXPECT_EQ(buf->size(), 256);
  buf->host_ptr()[0] = 42;
  buf->host_ptr()[255] = 7;
  EXPECT_EQ(buf->host_ptr()[0], 42);
}

TEST(ContextTest, SyncPointJoinsTimelines) {
  Context ctx = MakeCtx();
  ctx.queue(ProcKind::kCpu).EnqueueKernel(100.0, DType::kF32, 0.0);
  ctx.queue(ProcKind::kGpu).EnqueueKernel(300.0, DType::kF16, 0.0);
  const double t = ctx.SyncPoint();
  const double gpu_end = ctx.soc().gpu.kernel_launch_us + 300.0;
  EXPECT_DOUBLE_EQ(t, gpu_end + ctx.soc().sync_us);
  EXPECT_DOUBLE_EQ(ctx.device(ProcKind::kCpu).now_us(), t);
  EXPECT_DOUBLE_EQ(ctx.device(ProcKind::kGpu).now_us(), t);
  EXPECT_EQ(ctx.sync_count(), 1);
}

TEST(ContextTest, ResetClearsState) {
  Context ctx = MakeCtx();
  ctx.queue(ProcKind::kCpu).EnqueueKernel(100.0, DType::kF32, 123.0);
  ctx.SyncPoint();
  ctx.Reset();
  EXPECT_DOUBLE_EQ(ctx.NowUs(), 0.0);
  EXPECT_EQ(ctx.sync_count(), 0);
  EXPECT_DOUBLE_EQ(ctx.device(ProcKind::kCpu).TotalBytes(), 0.0);
}

}  // namespace
}  // namespace ulayer::ucl
