#include "io/io.h"

#include <gtest/gtest.h>

#include "core/runtime.h"
#include "models/model.h"

namespace ulayer {
namespace {

// Structural equality of two graphs.
void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    const Node& na = a.node(i);
    const Node& nb = b.node(i);
    EXPECT_EQ(na.desc.kind, nb.desc.kind) << i;
    EXPECT_EQ(na.desc.name, nb.desc.name) << i;
    EXPECT_EQ(na.inputs, nb.inputs) << i;
    EXPECT_EQ(na.out_shape, nb.out_shape) << i;
    EXPECT_EQ(na.desc.out_channels, nb.desc.out_channels) << i;
    EXPECT_EQ(na.desc.conv.relu, nb.desc.conv.relu) << i;
  }
}

class ZooRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ZooRoundTrip, GraphSerializationRoundTrips) {
  Model m;
  switch (GetParam()) {
    case 0:
      m = MakeLeNet5();
      break;
    case 1:
      m = MakeAlexNet();
      break;
    case 2:
      m = MakeVgg16();
      break;
    case 3:
      m = MakeGoogLeNet();
      break;
    case 4:
      m = MakeSqueezeNetV11();
      break;
    case 5:
      m = MakeMobileNetV1();
      break;
    case 6:
      m = MakeResNet18();
      break;
    default:
      m = MakeResNet50();
      break;
  }
  const std::string text = GraphToText(m.graph);
  const Graph parsed = GraphFromText(text);
  ExpectSameGraph(m.graph, parsed);
  // Round-tripping again is byte-stable.
  EXPECT_EQ(GraphToText(parsed), text);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooRoundTrip, ::testing::Range(0, 8));

TEST(IoTest, RejectsMissingHeader) {
  EXPECT_THROW(GraphFromText("input x 1 1 1 1\n"), ParseError);
}

TEST(IoTest, RejectsUnknownOp) {
  EXPECT_THROW(GraphFromText("ulayer-graph v1\nfrobnicate x 0\n"), ParseError);
}

TEST(IoTest, RejectsForwardReferences) {
  // conv referencing node 5 before it exists.
  EXPECT_THROW(GraphFromText("ulayer-graph v1\n"
                             "input in 1 3 8 8\n"
                             "conv c 5 8 3 3 1 1 1 1 1\n"),
               ParseError);
}

TEST(IoTest, RejectsBadShapes) {
  EXPECT_THROW(GraphFromText("ulayer-graph v1\ninput in 1 0 8 8\n"), ParseError);
  EXPECT_THROW(GraphFromText("ulayer-graph v1\ninput in 1 3 8\n"), ParseError);
}

TEST(IoTest, RejectsEmptyGraph) { EXPECT_THROW(GraphFromText("ulayer-graph v1\n"), ParseError); }

TEST(IoTest, SkipsCommentsAndBlankLines) {
  const Graph g = GraphFromText(
      "ulayer-graph v1\n"
      "# a comment\n"
      "\n"
      "input in 1 3 8 8\n"
      "conv c1 0 8 3 3 1 1 1 1 1\n");
  EXPECT_EQ(g.size(), 2);
  EXPECT_EQ(g.node(1).out_shape, Shape(1, 8, 8, 8));
}

TEST(IoTest, HandWrittenGraphExecutes) {
  // The format is meant to be hand-authorable: write a net, plan it, run it.
  const Graph g = GraphFromText(
      "ulayer-graph v1\n"
      "input image 1 3 32 32\n"
      "conv stem 0 16 3 3 1 1 1 1 1\n"
      "pool p 1 max 2 2 0 0\n"
      "fc head 2 10 0\n"
      "softmax prob 3\n");
  Model m;
  m.name = "hand-written";
  m.graph = g;
  ULayerRuntime rt(m, MakeExynos7420());
  const RunResult r = rt.Run();
  EXPECT_GT(r.latency_us, 0.0);
}

TEST(IoTest, PlanToTextListsDecisionsAndGroups) {
  const Model m = MakeGoogLeNet();
  ULayerRuntime rt(m, MakeExynos7420());
  const std::string text = PlanToText(rt.plan(), m.graph);
  EXPECT_NE(text.find("branch-group"), std::string::npos);
  EXPECT_NE(text.find("inception_3a/3x3"), std::string::npos);
  // Every non-input node appears.
  EXPECT_NE(text.find("[softmax]"), std::string::npos);
}

TEST(IoTest, NamesWithSpacesAreSanitized) {
  Graph g;
  g.AddInput(Shape(1, 1, 4, 4), "my input");
  const std::string text = GraphToText(g);
  EXPECT_EQ(text.find("my input"), std::string::npos);
  const Graph parsed = GraphFromText(text);
  EXPECT_EQ(parsed.node(0).desc.name, "my_input");
}


TEST(IoTest, TraceToTextShowsBothDevicesBusy) {
  const Model m = MakeVgg16();
  ULayerRuntime rt(m, MakeExynos7420());
  const RunResult r = rt.Run();
  ASSERT_FALSE(r.trace.empty());
  const std::string text = TraceToText(r, m.graph);
  EXPECT_NE(text.find("CPU |"), std::string::npos);
  EXPECT_NE(text.find("GPU |"), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
}

TEST(IoTest, TraceEntriesAreWellFormed) {
  const Model m = MakeAlexNet();
  ULayerRuntime rt(m, MakeExynos7880());
  const RunResult r = rt.Run();
  for (const KernelTrace& kt : r.trace) {
    EXPECT_GE(kt.start_us, 0.0);
    EXPECT_GT(kt.end_us, kt.start_us);
    EXPECT_LE(kt.end_us, r.latency_us + 1e-9);
    EXPECT_GE(kt.node, 0);
    EXPECT_LT(kt.node, m.graph.size());
  }
}

}  // namespace
}  // namespace ulayer
