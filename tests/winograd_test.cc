#include "kernels/winograd.h"

#include <gtest/gtest.h>

#include "kernels/conv.h"
#include "soc/work.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

TEST(WinogradTest, ApplicabilityRule) {
  Conv2DParams ok;
  ok.kernel_h = ok.kernel_w = 3;
  EXPECT_TRUE(WinogradApplicable(ok));
  Conv2DParams strided = ok;
  strided.stride_h = strided.stride_w = 2;
  EXPECT_FALSE(WinogradApplicable(strided));
  Conv2DParams five = ok;
  five.kernel_h = five.kernel_w = 5;
  EXPECT_FALSE(WinogradApplicable(five));
}

struct WinoCase {
  int64_t ic, h, w, oc;
  int pad;
  bool relu;
};

class WinogradParam : public ::testing::TestWithParam<WinoCase> {};

TEST_P(WinogradParam, MatchesGemmConvWithinReassociationError) {
  const WinoCase wc = GetParam();
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = wc.pad;
  p.relu = wc.relu;
  Tensor in(Shape(1, wc.ic, wc.h, wc.w), DType::kF32);
  Tensor w(Shape(wc.oc, wc.ic, 3, 3), DType::kF32);
  Tensor bias(Shape(1, wc.oc, 1, 1), DType::kF32);
  FillUniform(in, 1, -1.0f, 1.0f);
  FillUniform(w, 2, -0.5f, 0.5f);
  FillUniform(bias, 3, -0.1f, 0.1f);

  const Shape out_shape(1, wc.oc, p.OutH(static_cast<int>(in.shape().h)),
                        p.OutW(static_cast<int>(in.shape().w)));
  Tensor ref(out_shape, DType::kF32);
  Conv2DF32(in, w, bias, p, ref);
  Tensor wino(out_shape, DType::kF32);
  WinogradConv2DF32(in, w, bias, p, wino);
  // The transforms reassociate additions: tolerance scales with the dot
  // product length.
  EXPECT_LT(MaxAbsDiff(ref, wino), 1e-3f * static_cast<float>(wc.ic));
}

INSTANTIATE_TEST_SUITE_P(Shapes, WinogradParam,
                         ::testing::Values(WinoCase{1, 6, 6, 1, 1, false},   // minimal
                                           WinoCase{4, 8, 8, 8, 1, true},    // even tiles
                                           WinoCase{3, 7, 9, 5, 1, false},   // odd output
                                           WinoCase{8, 14, 14, 16, 1, true},  // VGG-ish block
                                           WinoCase{2, 6, 6, 3, 0, false}    // valid (no pad)
                                           ));

TEST(WinogradTest, ChannelSlicesComposeExactly) {
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  Tensor in(Shape(1, 4, 8, 8), DType::kF32);
  Tensor w(Shape(6, 4, 3, 3), DType::kF32);
  Tensor bias(Shape(1, 6, 1, 1), DType::kF32);
  FillUniform(in, 4);
  FillUniform(w, 5, -0.5f, 0.5f);
  FillUniform(bias, 6, -0.1f, 0.1f);
  Tensor full(Shape(1, 6, 8, 8), DType::kF32);
  WinogradConv2DF32(in, w, bias, p, full);
  Tensor split_out(Shape(1, 6, 8, 8), DType::kF32);
  WinogradConv2DF32(in, w, bias, p, split_out, 0, 2);
  WinogradConv2DF32(in, w, bias, p, split_out, 2, 6);
  EXPECT_EQ(MaxAbsDiff(full, split_out), 0.0f);
}

TEST(WinogradTest, CostModelCutsMacsBy2_25x) {
  Graph g;
  const int in = g.AddInput(Shape(1, 64, 56, 56));
  const int c = g.AddConv("c", in, 64, 3, 1, 1, true);
  const LayerWork direct = ComputeWork(g, g.node(c), DType::kF32);
  const LayerWork wino = WinogradConvWork(g, g.node(c), DType::kF32);
  EXPECT_NEAR(direct.macs / wino.macs, 2.25, 1e-9);
  // Transforms cost extra traffic, never less.
  EXPECT_GT(wino.TotalBytes(), direct.TotalBytes());
}

}  // namespace
}  // namespace ulayer
