#include "kernels/im2col.h"

#include <vector>

#include <gtest/gtest.h>

#include "quant/quantize.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

// Index-based oracle: cols[(c*kh*kw + ki)*out_spatial + (oh*out_w + ow)]
// must equal input[c][oh*s - p + ki_h][ow*s - p + ki_w] (or pad).
TEST(Im2ColTest, MatchesIndexOracle) {
  const int channels = 3, height = 5, width = 6;
  Conv2DParams p;
  p.kernel_h = 3;
  p.kernel_w = 2;
  p.stride_h = 2;
  p.stride_w = 1;
  p.pad_h = 1;
  p.pad_w = 0;
  std::vector<float> input(static_cast<size_t>(channels * height * width));
  Rng rng(1);
  for (float& v : input) {
    v = rng.Uniform(-1.0f, 1.0f);
  }
  const int out_h = p.OutH(height);
  const int out_w = p.OutW(width);
  std::vector<float> cols(static_cast<size_t>(channels * p.kernel_h * p.kernel_w) *
                          static_cast<size_t>(out_h * out_w));
  Im2ColF32(input.data(), channels, height, width, p, cols.data(), -99.0f);

  for (int c = 0; c < channels; ++c) {
    for (int kh = 0; kh < p.kernel_h; ++kh) {
      for (int kw = 0; kw < p.kernel_w; ++kw) {
        for (int oh = 0; oh < out_h; ++oh) {
          for (int ow = 0; ow < out_w; ++ow) {
            const int row = (c * p.kernel_h + kh) * p.kernel_w + kw;
            const float got =
                cols[static_cast<size_t>(row * out_h * out_w + oh * out_w + ow)];
            const int ih = oh * p.stride_h - p.pad_h + kh;
            const int iw = ow * p.stride_w - p.pad_w + kw;
            if (ih < 0 || ih >= height || iw < 0 || iw >= width) {
              EXPECT_EQ(got, -99.0f) << "expected pad value";
            } else {
              EXPECT_EQ(got, input[static_cast<size_t>((c * height + ih) * width + iw)]);
            }
          }
        }
      }
    }
  }
}

TEST(Im2ColTest, OneByOneKernelIsIdentity) {
  const int channels = 2, height = 3, width = 3;
  Conv2DParams p;  // 1x1, stride 1, no pad.
  std::vector<float> input(18);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(i);
  }
  std::vector<float> cols(18);
  Im2ColF32(input.data(), channels, height, width, p, cols.data());
  EXPECT_EQ(cols, input);
}

TEST(Im2ColTest, QU8UsesZeroPointPadding) {
  const int channels = 1, height = 2, width = 2;
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  std::vector<uint8_t> input = {10, 20, 30, 40};
  std::vector<uint8_t> cols(9 * 4);
  Im2ColQU8(input.data(), channels, height, width, p, cols.data(), /*pad_value=*/128);
  // Center kernel tap of the first output position is input[0]=10; the
  // top-left tap is padding.
  EXPECT_EQ(cols[4 * 4 + 0], 10);  // row (kh=1,kw=1), col 0
  EXPECT_EQ(cols[0 * 4 + 0], 128);
  // Count of pad entries: 3x3 window at each of 4 positions over a 2x2
  // image with pad 1 -> each position sees 5 pads.
  int pads = 0;
  for (uint8_t v : cols) {
    pads += v == 128 ? 1 : 0;
  }
  EXPECT_EQ(pads, 20);
}

TEST(Im2ColTest, F16PreservesBitPatterns) {
  const int channels = 1, height = 4, width = 4;
  Conv2DParams p;
  p.kernel_h = p.kernel_w = 2;
  std::vector<Half> input(16);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = Half(0.1f * static_cast<float>(i));
  }
  const int out = 3 * 3;
  std::vector<Half> cols(static_cast<size_t>(4 * out));
  Im2ColF16(input.data(), channels, height, width, p, cols.data());
  // Element (kh=0,kw=0) at output (0,0) is input (0,0): bit-identical copy.
  EXPECT_EQ(cols[0].bits(), input[0].bits());
  EXPECT_EQ(cols[static_cast<size_t>(3 * out + out - 1)].bits(),
            input[15].bits());  // (kh=1,kw=1) at (2,2) -> input (3,3)
}

}  // namespace
}  // namespace ulayer
