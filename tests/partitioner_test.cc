#include "core/partitioner.h"

#include <gtest/gtest.h>

#include "core/executor.h"
#include "models/model.h"

namespace ulayer {
namespace {

struct Fixture {
  Model model;
  SocSpec soc;
  TimingModel timing;
  ExecConfig config;
  LatencyPredictor predictor;

  Fixture(Model m, SocSpec s, ExecConfig c)
      : model(std::move(m)),
        soc(std::move(s)),
        timing(soc),
        config(c),
        predictor(timing, config, {&model.graph}) {}
};

TEST(PartitionerTest, CooperativePlanSplitsBigConvLayers) {
  Fixture f(MakeVgg16(), MakeExynos7420(), ExecConfig::ProcessorFriendly());
  Partitioner::Options opts;
  opts.branch_distribution = false;
  const Plan plan =
      Partitioner(f.model.graph, f.timing, f.config, f.predictor, opts).Build();
  // VGG-16's large conv layers should be worth splitting on the high-end SoC
  // where CPU-QUInt8 and GPU-F16 throughput are close.
  int coop = 0;
  for (const Node& n : f.model.graph.nodes()) {
    if (n.desc.kind == LayerKind::kConv &&
        plan.nodes[static_cast<size_t>(n.id)].kind == StepKind::kCooperative) {
      ++coop;
    }
  }
  EXPECT_GT(coop, 5) << "expected most VGG conv layers to be split";
}

TEST(PartitionerTest, LayerToProcessorModeNeverSplits) {
  Fixture f(MakeGoogLeNet(), MakeExynos7420(), ExecConfig::AllQU8());
  Partitioner::Options opts;
  opts.channel_distribution = false;
  opts.branch_distribution = false;
  const Plan plan =
      Partitioner(f.model.graph, f.timing, f.config, f.predictor, opts).Build();
  for (const NodeAssignment& a : plan.nodes) {
    EXPECT_NE(a.kind, StepKind::kCooperative);
  }
  EXPECT_TRUE(plan.branch_plans.empty());
}

TEST(PartitionerTest, SplitCandidatesAreRespected) {
  Fixture f(MakeVgg16(), MakeExynos7420(), ExecConfig::ProcessorFriendly());
  const Plan plan = Partitioner(f.model.graph, f.timing, f.config, f.predictor).Build();
  for (const NodeAssignment& a : plan.nodes) {
    if (a.kind == StepKind::kCooperative) {
      EXPECT_TRUE(a.cpu_fraction == 0.25 || a.cpu_fraction == 0.5 || a.cpu_fraction == 0.75)
          << a.cpu_fraction;
    }
  }
}

TEST(PartitionerTest, BranchDistributionCoversInceptionModules) {
  Fixture f(MakeGoogLeNet(), MakeExynos7420(), ExecConfig::ProcessorFriendly());
  const Plan plan = Partitioner(f.model.graph, f.timing, f.config, f.predictor).Build();
  // GoogLeNet has 9 Inception modules; branch distribution should claim
  // (most of) them — the paper's Figure 17 shows Br.Dist contributing.
  EXPECT_GE(plan.branch_plans.size(), 5u);
  for (const BranchPlan& bp : plan.branch_plans) {
    EXPECT_EQ(bp.assignment.size(), bp.group.branches.size());
    // A useful branch mapping uses both processors.
    bool cpu = false, gpu = false;
    for (ProcKind p : bp.assignment) {
      (p == ProcKind::kCpu ? cpu : gpu) = true;
    }
    EXPECT_TRUE(cpu && gpu) << "mapping should parallelize across processors";
  }
}

TEST(PartitionerTest, BranchNodesAreNeverAlsoSplit) {
  Fixture f(MakeSqueezeNetV11(), MakeExynos7880(), ExecConfig::ProcessorFriendly());
  const Plan plan = Partitioner(f.model.graph, f.timing, f.config, f.predictor).Build();
  for (const BranchPlan& bp : plan.branch_plans) {
    for (const auto& branch : bp.group.branches) {
      for (int id : branch) {
        EXPECT_EQ(plan.nodes[static_cast<size_t>(id)].kind, StepKind::kBranch);
      }
    }
  }
}

TEST(PartitionerTest, EstimateBranchGroupPrefersBalancedMappings) {
  Fixture f(MakeGoogLeNet(), MakeExynos7420(), ExecConfig::ProcessorFriendly());
  Partitioner part(f.model.graph, f.timing, f.config, f.predictor);
  const auto groups = FindBranchGroups(f.model.graph);
  ASSERT_FALSE(groups.empty());
  const BranchGroup& bg = groups[0];
  // All-CPU mapping must cost at least as much as the best mixed mapping.
  const std::vector<ProcKind> all_cpu(bg.branches.size(), ProcKind::kCpu);
  double best_mixed = std::numeric_limits<double>::infinity();
  for (uint32_t mask = 1; mask + 1 < (1u << bg.branches.size()); ++mask) {
    std::vector<ProcKind> a(bg.branches.size());
    for (size_t b = 0; b < a.size(); ++b) {
      a[b] = (mask >> b) & 1 ? ProcKind::kGpu : ProcKind::kCpu;
    }
    best_mixed = std::min(best_mixed, part.EstimateBranchGroupUs(bg, a));
  }
  EXPECT_LT(best_mixed, part.EstimateBranchGroupUs(bg, all_cpu));
}

TEST(PartitionerTest, ConcatAndSoftmaxStaySingle) {
  Fixture f(MakeGoogLeNet(), MakeExynos7420(), ExecConfig::ProcessorFriendly());
  const Plan plan = Partitioner(f.model.graph, f.timing, f.config, f.predictor).Build();
  for (const Node& n : f.model.graph.nodes()) {
    if (n.desc.kind == LayerKind::kConcat || n.desc.kind == LayerKind::kSoftmax) {
      EXPECT_NE(plan.nodes[static_cast<size_t>(n.id)].kind, StepKind::kCooperative)
          << n.desc.name;
    }
  }
}

TEST(PartitionerTest, OracleModeMatchesPredictorModeShape) {
  Fixture f(MakeAlexNet(), MakeExynos7420(), ExecConfig::ProcessorFriendly());
  Partitioner::Options oracle;
  oracle.use_oracle = true;
  const Plan p1 = Partitioner(f.model.graph, f.timing, f.config, f.predictor).Build();
  const Plan p2 = Partitioner(f.model.graph, f.timing, f.config, f.predictor, oracle).Build();
  EXPECT_EQ(p1.nodes.size(), p2.nodes.size());
  // Both should split a decent share of the big conv layers.
  EXPECT_GT(p2.CooperativeFraction(), 0.2);
}


TEST(PartitionerTest, EnergyObjectiveTradesLatencyForEnergy) {
  // Energy-objective plans must not consume more energy than latency-
  // objective plans (measured by the executor), across the zoo.
  for (const Model& m : MakeEvaluationModels()) {
    const SocSpec soc = MakeExynos7420();
    const ExecConfig cfg = ExecConfig::ProcessorFriendly();
    const TimingModel tm(soc);
    const LatencyPredictor pred(tm, cfg, {&m.graph});

    Partitioner::Options lat_opts;
    Partitioner::Options energy_opts;
    energy_opts.objective = Partitioner::Objective::kEnergy;

    PreparedModel pm(m, cfg);
    Executor ex(pm, soc);
    const RunResult r_lat = ex.Run(Partitioner(m.graph, tm, cfg, pred, lat_opts).Build());
    const RunResult r_energy = ex.Run(Partitioner(m.graph, tm, cfg, pred, energy_opts).Build());
    EXPECT_LE(r_energy.total_energy_mj, r_lat.total_energy_mj * 1.02) << m.name;
    // And the latency objective must not lose on latency.
    EXPECT_LE(r_lat.latency_us, r_energy.latency_us * 1.02) << m.name;
  }
}

TEST(PartitionerTest, EdpObjectiveSitsBetweenExtremes) {
  const Model m = MakeVgg16();
  const SocSpec soc = MakeExynos7880();
  const ExecConfig cfg = ExecConfig::ProcessorFriendly();
  const TimingModel tm(soc);
  const LatencyPredictor pred(tm, cfg, {&m.graph});
  PreparedModel pm(m, cfg);
  Executor ex(pm, soc);

  auto run_with = [&](Partitioner::Objective obj) {
    Partitioner::Options o;
    o.objective = obj;
    return ex.Run(Partitioner(m.graph, tm, cfg, pred, o).Build());
  };
  const RunResult lat = run_with(Partitioner::Objective::kLatency);
  const RunResult edp = run_with(Partitioner::Objective::kEdp);
  const RunResult nrg = run_with(Partitioner::Objective::kEnergy);
  // EDP's product metric must be no worse than either extreme's product.
  const double edp_val = edp.latency_us * edp.total_energy_mj;
  EXPECT_LE(edp_val, lat.latency_us * lat.total_energy_mj * 1.02);
  EXPECT_LE(edp_val, nrg.latency_us * nrg.total_energy_mj * 1.02);
}

}  // namespace
}  // namespace ulayer
