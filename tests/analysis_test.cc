// Tests for the plan-level static memory-access analyzer (src/analysis):
// zoo-wide happy paths, one adversarial fixture per A-series code (malformed
// plans via explicit cooperative slices, corrupted pack-buffers layouts,
// under/over-declared AccessSpecs via AnalyzeOptions::spec_transform), the
// ParallelFor chunk checks in isolation, and the dynamic shadow-poison
// cross-check both accepting honest specs and catching an under-declared
// one. Mirrors the malformed-fixture style of tests/verify_test.cc.
#include <gtest/gtest.h>

#include <set>

#include "analysis/analyzer.h"
#include "baselines/baselines.h"
#include "core/memory_plan.h"
#include "core/runtime.h"
#include "memory/shadow.h"
#include "models/model.h"
#include "tensor/rng.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

int Count(const Report& r, DiagCode code) {
  int n = 0;
  for (const Diagnostic& d : r.diagnostics()) {
    n += d.code == code ? 1 : 0;
  }
  return n;
}

std::vector<Model> Zoo() {
  std::vector<Model> zoo;
  zoo.push_back(MakeLeNet5());
  zoo.push_back(MakeAlexNet());
  zoo.push_back(MakeVgg16());
  zoo.push_back(MakeGoogLeNet());
  zoo.push_back(MakeSqueezeNetV11());
  zoo.push_back(MakeMobileNetV1());
  zoo.push_back(MakeResNet18());
  zoo.push_back(MakeResNet50());
  zoo.push_back(MakeInceptionV3());
  return zoo;
}

// input -> stem -> {branch_a, branch_b} -> concat: the smallest graph with
// two structurally concurrent buffers (a and b have no path between them).
Model MakeForkModel() {
  Model m;
  m.name = "fork";
  const int in = m.graph.AddInput(Shape(1, 8, 8, 8));
  const int stem = m.graph.AddConv("stem", in, 8, 3, 1, 1, true);
  const int a = m.graph.AddConv("branch_a", stem, 8, 3, 1, 1, true);
  const int b = m.graph.AddConv("branch_b", stem, 8, 3, 1, 1, true);
  m.graph.AddConcat("cat", {a, b});
  return m;
}

// input -> one 3x3 conv: a single execution unit with nonzero scratch demand.
Model MakeSingleConvModel() {
  Model m;
  m.name = "one_conv";
  const int in = m.graph.AddInput(Shape(1, 4, 8, 8));
  m.graph.AddConv("conv", in, 4, 3, 1, 1, true);
  return m;
}

Plan AllOn(const Graph& g, ProcKind proc) {
  Plan p;
  p.nodes.assign(static_cast<size_t>(g.size()), NodeAssignment{StepKind::kSingle, proc});
  return p;
}

// --- Happy paths ------------------------------------------------------------

TEST(AnalysisHappyPath, ZooPartitionerPlansAnalyzeClean) {
  const SocSpec soc = MakeExynos7420();
  for (const Model& m : Zoo()) {
    for (const ExecConfig& cfg : {ExecConfig::AllF32(), ExecConfig::ProcessorFriendly()}) {
      ULayerRuntime::Options opt;
      opt.config = cfg;
      ULayerRuntime rt(m, soc, opt);
      const PreparedModel pm(m, cfg);
      const Report r = analysis::AnalyzePlan(pm, rt.plan());
      EXPECT_TRUE(r.ok()) << m.name << "\n" << r.ToString();
      EXPECT_EQ(r.warning_count(), 0) << m.name << "\n" << r.ToString();
    }
  }
}

TEST(AnalysisHappyPath, BaselinePlansAnalyzeClean) {
  const ExecConfig cfg = ExecConfig::AllF32();
  for (const Model& m : Zoo()) {
    const PreparedModel pm(m, cfg);
    for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
      const Report r = analysis::AnalyzePlan(pm, MakeSingleProcessorPlan(m.graph, proc));
      EXPECT_TRUE(r.ok()) << m.name << " single-" << ProcKindName(proc) << "\n" << r.ToString();
    }
  }
}

TEST(AnalysisHappyPath, ForkFixtureIsCleanBeforeCorruption) {
  // The adversarial fixtures below all start from this graph; prove the
  // uncorrupted layout and plans analyze clean so each fixture's diagnostic
  // is attributable to its corruption alone.
  const Model m = MakeForkModel();
  const PreparedModel pm(m, ExecConfig::AllF32());
  Plan cross = AllOn(m.graph, ProcKind::kCpu);
  cross.nodes[3].proc = ProcKind::kGpu;  // branch_b concurrent with branch_a.
  for (const Plan& plan : {AllOn(m.graph, ProcKind::kCpu), cross}) {
    const Report r = analysis::AnalyzePlan(pm, plan);
    EXPECT_TRUE(r.ok()) << r.ToString();
    EXPECT_EQ(r.diagnostics().size(), 0u) << r.ToString();
  }
}

// --- Adversarial fixtures: one distinct A-code each -------------------------

class AdversarialFixture : public ::testing::Test {
 protected:
  AdversarialFixture() : model_(MakeForkModel()), pm_(model_, ExecConfig::AllF32()) {}

  const Graph& graph() const { return model_.graph; }

  Model model_;
  PreparedModel pm_;
  // Node ids of MakeForkModel, by construction order.
  static constexpr int kStem = 1;
  static constexpr int kBranchA = 2;
  static constexpr int kBranchB = 3;
  static constexpr int kCat = 4;
};

TEST_F(AdversarialFixture, A501_OverlappingCoopSliceWrites) {
  // The two halves of a cooperative step always may run in parallel; slices
  // that share channel 4 make both halves write that channel's bytes.
  Plan plan = AllOn(graph(), ProcKind::kCpu);
  const int64_t c = graph().node(kBranchA).out_shape.c;
  NodeAssignment& a = plan.nodes[kBranchA];
  a = NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.5};
  a.cpu_slice = ChannelRange{0, c / 2 + 1};
  a.gpu_slice = ChannelRange{c / 2, c};
  const Report r = analysis::AnalyzePlan(pm_, plan);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Count(r, DiagCode::kRaceWriteOverlap), 1) << r.ToString();
  EXPECT_EQ(r.diagnostics().size(), 1u) << r.ToString();
  EXPECT_EQ(DiagCodeId(DiagCode::kRaceWriteOverlap), "A501");
}

TEST_F(AdversarialFixture, A502_ConcurrentWriteIntoReadBytes) {
  // branch_b (GPU) is re-pointed at the stem's pool interval, which the
  // concurrent branch_a (CPU) reads. The write/read race (A502) and its
  // layout-level cause — the stem's bytes reassigned while still read
  // (A601) — are reported together by design.
  Plan plan = AllOn(graph(), ProcKind::kCpu);
  plan.nodes[kBranchB].proc = ProcKind::kGpu;
  MemoryLayout layout = BuildMemoryLayout(pm_);
  layout.offsets[kBranchB] = layout.offsets[kStem];
  const Report r = analysis::AnalyzePlan(pm_, plan, layout);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Count(r, DiagCode::kRaceWriteReadOverlap), 1) << r.ToString();
  EXPECT_GE(Count(r, DiagCode::kLivenessUseAfterReassign), 1) << r.ToString();
  EXPECT_EQ(DiagCodeId(DiagCode::kRaceWriteReadOverlap), "A502");
}

TEST_F(AdversarialFixture, A503_DeclaredWritesEscapeSlice) {
  // Widen branch_a's declared writes one cache line past its buffer, with a
  // coherent extra loop so the A7xx coverage checks stay satisfied: only the
  // writes-inside-slice proof (A503) can object.
  const int64_t bytes = graph().node(kBranchA).out_shape.NumElements() *
                        DTypeSize(pm_.ActivationDType(kBranchA));
  analysis::AnalyzeOptions opts;
  opts.spec_transform = [bytes](int id, AccessSpec spec) {
    if (id != kBranchA) {
      return spec;
    }
    spec.writes.push_back(AccessRange{bytes, bytes + 64});
    LoopSpec extra;
    extra.begin = 0;
    extra.end = 1;
    extra.grain = 1;
    extra.stride_bytes = 64;
    extra.iter_bytes = 64;
    extra.bases = {bytes};
    spec.loops.push_back(extra);
    return spec;
  };
  const Report r = analysis::AnalyzePlan(pm_, AllOn(graph(), ProcKind::kCpu), opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Count(r, DiagCode::kWriteOutsideSlice), 1) << r.ToString();
  EXPECT_EQ(r.diagnostics().size(), 1u) << r.ToString();
  EXPECT_EQ(DiagCodeId(DiagCode::kWriteOutsideSlice), "A503");
}

TEST_F(AdversarialFixture, A601_PoolIntervalReusedWhileLive) {
  // branch_b's interval aliased onto branch_a's: the two producers have no
  // path between them, so neither happens-before the other and the packing
  // rule is violated — independently of which processors the plan picks.
  MemoryLayout layout = BuildMemoryLayout(pm_);
  layout.offsets[kBranchB] = layout.offsets[kBranchA];
  const Report r = analysis::AnalyzePlan(pm_, AllOn(graph(), ProcKind::kCpu), layout);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Count(r, DiagCode::kLivenessUseAfterReassign), 1) << r.ToString();
  EXPECT_EQ(r.diagnostics().size(), 1u) << r.ToString();
  EXPECT_EQ(DiagCodeId(DiagCode::kLivenessUseAfterReassign), "A601");
}

TEST_F(AdversarialFixture, A602_PoolIntervalInvalid) {
  {  // Interval pushed past the end of the pool.
    MemoryLayout layout = BuildMemoryLayout(pm_);
    layout.offsets[kBranchB] = layout.pool_bytes;
    const Report r = analysis::AnalyzePlan(pm_, AllOn(graph(), ProcKind::kCpu), layout);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(Count(r, DiagCode::kPoolIntervalInvalid), 1) << r.ToString();
    EXPECT_EQ(r.diagnostics().size(), 1u) << r.ToString();
  }
  {  // Interval size disagreeing with the activation's byte count.
    MemoryLayout layout = BuildMemoryLayout(pm_);
    layout.bytes[kBranchB] += 1;
    const Report r = analysis::AnalyzePlan(pm_, AllOn(graph(), ProcKind::kCpu), layout);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(Count(r, DiagCode::kPoolIntervalInvalid), 1) << r.ToString();
  }
  {  // Declared read exceeding the producer's buffer.
    const int64_t stem_bytes =
        graph().node(kStem).out_shape.NumElements() * DTypeSize(pm_.ActivationDType(kStem));
    analysis::AnalyzeOptions opts;
    opts.spec_transform = [stem_bytes](int id, AccessSpec spec) {
      if (id == kBranchA && !spec.reads.empty()) {
        spec.reads[0].push_back(AccessRange{0, stem_bytes + 64});
      }
      return spec;
    };
    const Report r = analysis::AnalyzePlan(pm_, AllOn(graph(), ProcKind::kCpu), opts);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(Count(r, DiagCode::kPoolIntervalInvalid), 1) << r.ToString();
  }
  EXPECT_EQ(DiagCodeId(DiagCode::kPoolIntervalInvalid), "A602");
}

TEST(AdversarialScratch, A603_ScratchDemandExceedsReservation) {
  // A 3x3 conv stages im2col patches in the arena; shrinking the planned
  // reservation to zero must trip the scratch-overflow proof.
  const Model m = MakeSingleConvModel();
  const PreparedModel pm(m, ExecConfig::AllF32());
  const int conv = m.graph.OutputId();
  ASSERT_GT(analysis::NodeAccessSpec(pm, conv, ProcKind::kCpu, 0, m.graph.node(conv).out_shape.c)
                .scratch_bytes,
            0);
  MemoryLayout layout = BuildMemoryLayout(pm);
  layout.scratch_bytes = 0;
  const Report r = analysis::AnalyzePlan(pm, AllOn(m.graph, ProcKind::kCpu), layout);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Count(r, DiagCode::kScratchOverflow), 1) << r.ToString();
  EXPECT_EQ(r.diagnostics().size(), 1u) << r.ToString();
  EXPECT_EQ(DiagCodeId(DiagCode::kScratchOverflow), "A603");
}

TEST(AdversarialLoops, A701_ChunkWritesOverlap) {
  // Iterations wider than their stride: adjacent ParallelFor chunks write
  // the same bytes. The declared write set matches the loop union, so only
  // the disjointness proof can object.
  AccessSpec spec;
  spec.has_spec = true;
  LoopSpec loop;
  loop.begin = 0;
  loop.end = 4;
  loop.grain = 1;
  loop.stride_bytes = 64;
  loop.iter_bytes = 128;  // Overhangs into the next iteration's bytes.
  loop.bases = {0};
  spec.loops = {loop};
  spec.writes = {AccessRange{0, 3 * 64 + 128}};
  Report r;
  analysis::CheckSpecLoops(spec, /*node_id=*/7, r);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Count(r, DiagCode::kChunkWriteOverlap), 1) << r.ToString();
  EXPECT_EQ(r.diagnostics().size(), 1u) << r.ToString();
  EXPECT_EQ(DiagCodeId(DiagCode::kChunkWriteOverlap), "A701");
}

TEST(AdversarialLoops, A702_ChunkCoverageGap) {
  {  // Iterations narrower than their stride leave holes in the write set.
    AccessSpec spec;
    spec.has_spec = true;
    LoopSpec loop;
    loop.begin = 0;
    loop.end = 4;
    loop.grain = 1;
    loop.stride_bytes = 128;
    loop.iter_bytes = 64;
    loop.bases = {0};
    spec.loops = {loop};
    spec.writes = {AccessRange{0, 3 * 128 + 64}};
    Report r;
    analysis::CheckSpecLoops(spec, /*node_id=*/7, r);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(Count(r, DiagCode::kChunkCoverageGap), 1) << r.ToString();
    EXPECT_EQ(r.diagnostics().size(), 1u) << r.ToString();
  }
  {  // Invalid loop parameters (zero grain) are a coverage failure too.
    AccessSpec spec;
    spec.has_spec = true;
    LoopSpec loop;
    loop.begin = 0;
    loop.end = 2;
    loop.grain = 0;
    loop.stride_bytes = 1;
    loop.iter_bytes = 1;
    loop.bases = {0};
    spec.loops = {loop};
    Report r;
    analysis::CheckSpecLoops(spec, /*node_id=*/7, r);
    EXPECT_EQ(Count(r, DiagCode::kChunkCoverageGap), 1) << r.ToString();
  }
  EXPECT_EQ(DiagCodeId(DiagCode::kChunkCoverageGap), "A702");
}

TEST_F(AdversarialFixture, A703_AccessSpecMissing) {
  analysis::AnalyzeOptions opts;
  opts.spec_transform = [](int id, AccessSpec spec) {
    if (id == kBranchA) {
      spec.has_spec = false;
    }
    return spec;
  };
  const Report r = analysis::AnalyzePlan(pm_, AllOn(graph(), ProcKind::kCpu), opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Count(r, DiagCode::kAccessSpecMissing), 1) << r.ToString();
  EXPECT_EQ(r.diagnostics().size(), 1u) << r.ToString();
  EXPECT_EQ(DiagCodeId(DiagCode::kAccessSpecMissing), "A703");
}

// The acceptance requirement: each seeded adversarial fixture maps to its
// own stable diagnostic code.
TEST(AdversarialFixtures, FixtureCodesAreDistinct) {
  const std::set<std::string> ids = {
      DiagCodeId(DiagCode::kRaceWriteOverlap),         DiagCodeId(DiagCode::kRaceWriteReadOverlap),
      DiagCodeId(DiagCode::kWriteOutsideSlice),        DiagCodeId(DiagCode::kLivenessUseAfterReassign),
      DiagCodeId(DiagCode::kPoolIntervalInvalid),      DiagCodeId(DiagCode::kScratchOverflow),
      DiagCodeId(DiagCode::kChunkWriteOverlap),        DiagCodeId(DiagCode::kChunkCoverageGap),
      DiagCodeId(DiagCode::kAccessSpecMissing)};
  EXPECT_EQ(ids.size(), 9u);
}

// --- Dynamic cross-check (shadow poison / checksum) --------------------------

class CrossCheck : public ::testing::Test {
 protected:
  CrossCheck() : model_(MakeLeNet5()) {
    model_.MaterializeWeights();
    input_ = Tensor(model_.graph.node(0).out_shape, DType::kF32);
    FillUniform(input_, /*seed=*/42, -1.0f, 1.0f);
  }

  Model model_;
  Tensor input_;
};

TEST_F(CrossCheck, HonestSpecsPassOnLeNet) {
  const PreparedModel pm(model_, ExecConfig::AllF32());
  const MemoryLayout layout = BuildMemoryLayout(pm);
  for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
    const Report r =
        analysis::CrossCheckSpecs(pm, MakeSingleProcessorPlan(model_.graph, proc), layout, input_);
    EXPECT_TRUE(r.ok()) << "single-" << ProcKindName(proc) << "\n" << r.ToString();
  }
}

TEST_F(CrossCheck, CatchesUnderDeclaredSpec) {
  if (memory::ShadowPoisonActive()) {
    // Under ASan the under-declared write aborts inside the poisoned region
    // (the designed failure mode); the checksum path is only observable in
    // non-ASan builds.
    GTEST_SKIP() << "shadow poisoning is fatal under ASan by design";
  }
  const PreparedModel pm(model_, ExecConfig::AllF32());
  const MemoryLayout layout = BuildMemoryLayout(pm);
  int conv = -1;
  for (const Node& n : model_.graph.nodes()) {
    if (n.desc.kind == LayerKind::kConv) {
      conv = n.id;
      break;
    }
  }
  ASSERT_GE(conv, 0);
  // Halve the declared write set (with a coherent loop, so every static
  // check still passes); the kernel still writes its full channel range, so
  // only the dynamic checksum can notice the under-declaration.
  const int64_t bytes = model_.graph.node(conv).out_shape.NumElements() *
                        DTypeSize(pm.ActivationDType(conv));
  const int64_t half = bytes / 2;
  analysis::AnalyzeOptions opts;
  opts.spec_transform = [conv, half](int id, AccessSpec spec) {
    if (id != conv) {
      return spec;
    }
    spec.writes = {AccessRange{0, half}};
    LoopSpec loop;
    loop.begin = 0;
    loop.end = 1;
    loop.grain = 1;
    loop.stride_bytes = half;
    loop.iter_bytes = half;
    loop.bases = {0};
    spec.loops = {loop};
    return spec;
  };
  const Plan plan = MakeSingleProcessorPlan(model_.graph, ProcKind::kCpu);
  ASSERT_TRUE(analysis::AnalyzePlan(pm, plan, layout, opts).ok())
      << "the under-declaration must be invisible to the static checks";
  const Report r = analysis::CrossCheckSpecs(pm, plan, layout, input_, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Count(r, DiagCode::kWriteOutsideSlice), 1) << r.ToString();
}

}  // namespace
}  // namespace ulayer
