// End-to-end coverage of the extended model zoo (ResNet-18/50,
// Inception-v3) through the full ulayer pipeline, plus ucl event-profiling
// semantics the timeline traces rely on.
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/runtime.h"
#include "ucl/ucl.h"

namespace ulayer {
namespace {

class ExtendedZoo : public ::testing::TestWithParam<int> {
 protected:
  Model model() const {
    switch (GetParam()) {
      case 0:
        return MakeResNet18();
      case 1:
        return MakeResNet50();
      default:
        return MakeInceptionV3();
    }
  }
};

TEST_P(ExtendedZoo, ULayerBeatsLayerToProcessorOnBothSoCs) {
  const Model m = model();
  for (const bool high_end : {true, false}) {
    const SocSpec soc = high_end ? MakeExynos7420() : MakeExynos7880();
    const double l2p = RunLayerToProcessor(m, soc, ExecConfig::AllQU8()).latency_us;
    ULayerRuntime rt(m, soc);
    const RunResult r = rt.Run();
    EXPECT_LT(r.latency_us, l2p) << m.name << " " << soc.name;
    EXPECT_GT(r.cpu_busy_us, 0.0);
    EXPECT_GT(r.gpu_busy_us, 0.0);
  }
}

TEST_P(ExtendedZoo, PlanCoversEveryNodeExactlyOnce) {
  const Model m = model();
  ULayerRuntime rt(m, MakeExynos7420());
  const Plan& plan = rt.plan();
  ASSERT_EQ(plan.nodes.size(), static_cast<size_t>(m.graph.size()));
  // Branch-group nodes must carry kBranch; everything else kSingle/kCoop.
  std::vector<bool> in_group(static_cast<size_t>(m.graph.size()), false);
  for (const BranchPlan& bp : plan.branch_plans) {
    for (const auto& branch : bp.group.branches) {
      for (int id : branch) {
        EXPECT_FALSE(in_group[static_cast<size_t>(id)]) << "node in two groups";
        in_group[static_cast<size_t>(id)] = true;
      }
    }
  }
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kInput) {
      continue;
    }
    const NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    if (in_group[static_cast<size_t>(n.id)]) {
      EXPECT_EQ(a.kind, StepKind::kBranch) << n.desc.name;
    } else {
      EXPECT_NE(a.kind, StepKind::kBranch) << n.desc.name;
    }
  }
}

TEST_P(ExtendedZoo, EnergyAccountingStaysConsistent) {
  const Model m = model();
  ULayerRuntime rt(m, MakeExynos7880());
  const RunResult r = rt.Run();
  EXPECT_NEAR(r.total_energy_mj, r.cpu_energy_mj + r.gpu_energy_mj + r.idle_energy_mj, 1e-9);
  EXPECT_GE(r.latency_us + 1e-6, std::max(r.cpu_busy_us, r.gpu_busy_us));
}

INSTANTIATE_TEST_SUITE_P(Models, ExtendedZoo, ::testing::Range(0, 3));

TEST(UclProfilingTest, EventStartReflectsQueueBusyTime) {
  ucl::Context ctx(MakeExynos7420());
  ucl::CommandQueue& q = ctx.queue(ProcKind::kGpu);
  const ucl::Event a = q.EnqueueKernel(100.0, DType::kF16, 0.0).event;
  EXPECT_DOUBLE_EQ(a.start_us, 0.0);
  // Second kernel ready at t=0 but the queue is busy: starts when a ends.
  const ucl::Event b = q.EnqueueKernel(50.0, DType::kF16, 0.0).event;
  EXPECT_DOUBLE_EQ(b.start_us, a.complete_us);
  EXPECT_GT(b.complete_us, b.start_us);
}

TEST(UclProfilingTest, DependencyDelaysStartNotJustCompletion) {
  ucl::Context ctx(MakeExynos7420());
  const ucl::Event gpu = ctx.queue(ProcKind::kGpu).EnqueueKernel(300.0, DType::kF16, 0.0).event;
  const ucl::Event cpu =
      ctx.queue(ProcKind::kCpu).EnqueueKernel(10.0, DType::kF32, 0.0, {gpu}).event;
  EXPECT_DOUBLE_EQ(cpu.start_us, gpu.complete_us);
}

TEST(ExtendedZooTest, InceptionV3NestedBranchesAreNotMisdetected) {
  // Inception-C modules fan out *within* a branch; the simple chain-based
  // detector must not claim those modules (their inner forks break the
  // linear-chain invariant), while A/B modules are detected.
  const Model m = MakeInceptionV3();
  const auto groups = FindBranchGroups(m.graph);
  for (const BranchGroup& bg : groups) {
    const std::string& join_name = m.graph.node(bg.join).desc.name;
    EXPECT_EQ(join_name.find("mixed_7b"), std::string::npos) << join_name;
    EXPECT_EQ(join_name.find("mixed_7c"), std::string::npos) << join_name;
  }
  EXPECT_GE(groups.size(), 7u);  // A modules, B modules, reductions.
}

}  // namespace
}  // namespace ulayer
