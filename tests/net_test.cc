// Distributed split inference (DESIGN.md Section 15): link timelines, slice
// partitioning, coordinator-worker byte identity, fault recovery, the
// N-series run verifier, net.* metrics and the serving integration.
#include "net/coordinator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/runtime.h"
#include "net/link.h"
#include "net/partition.h"
#include "serve/model_cache.h"
#include "tensor/tensor.h"
#include "trace/metrics.h"
#include "verify/diagnostics.h"

namespace ulayer {
namespace {

using fault::FaultPlan;
using net::ClusterSpec;
using net::Coordinator;
using net::Link;
using net::LinkSpec;
using net::MakeEvenPlan;
using net::MakeUniformCluster;
using net::MessageRecord;
using net::NetPlan;
using net::NetRunResult;
using net::SliceBoundaries;
using net::SliceRecord;

// --- Link timeline -----------------------------------------------------------

TEST(LinkTest, BusyTimelineIsDeterministicAndHalfDuplex) {
  LinkSpec spec;
  spec.gb_per_s = 1.0;  // 1e3 bytes per us.
  spec.latency_us = 100.0;
  spec.mtu_bytes = 1000;
  spec.per_packet_us = 1.0;
  Link link(spec);

  // 2500 bytes: 3 fragments, occupancy 3 * 1.0 + 2500 / 1e3 = 5.5us.
  const net::Delivery first = link.Send(0.0, 2500);
  EXPECT_DOUBLE_EQ(first.depart_us, 0.0);
  EXPECT_EQ(first.frags, 3);
  EXPECT_DOUBLE_EQ(first.occupancy_us, 5.5);
  EXPECT_DOUBLE_EQ(first.arrive_us, 105.5);

  // Half-duplex: the next send queues behind the occupancy (not the arrival —
  // propagation does not hold the link).
  const net::Delivery second = link.Send(0.0, 500);
  EXPECT_DOUBLE_EQ(second.depart_us, 5.5);
  EXPECT_DOUBLE_EQ(second.occupancy_us, 1.5);
  EXPECT_DOUBLE_EQ(second.arrive_us, 107.0);

  // A sender that is not ready yet departs at its ready time.
  const net::Delivery third = link.Send(200.0, 100);
  EXPECT_DOUBLE_EQ(third.depart_us, 200.0);
  EXPECT_DOUBLE_EQ(third.arrive_us, 201.1 + 100.0);

  link.Reset();
  EXPECT_DOUBLE_EQ(link.busy_until(), 0.0);
  const net::Delivery again = link.Send(0.0, 2500);
  EXPECT_DOUBLE_EQ(again.arrive_us, first.arrive_us) << "same sequence, same timeline";
}

// --- Slice boundaries --------------------------------------------------------

TEST(SliceBoundariesTest, AlwaysPartitionsTheChannelRange) {
  const int64_t channel_counts[] = {1, 2, 3, 7, 16, 100};
  const std::vector<std::vector<double>> fraction_sets = {
      {1.0}, {0.5, 0.5}, {0.3, 0.3, 0.4}, {0.5, 0.0, 0.5}, {0.1, 0.9}, {0.25, 0.25, 0.25, 0.25}};
  for (int64_t c : channel_counts) {
    for (const auto& fractions : fraction_sets) {
      const std::vector<int64_t> bounds = SliceBoundaries(c, fractions);
      ASSERT_EQ(bounds.size(), fractions.size() + 1);
      EXPECT_EQ(bounds.front(), 0);
      EXPECT_EQ(bounds.back(), c) << "the last boundary closes the partition";
      for (size_t i = 1; i < bounds.size(); ++i) {
        EXPECT_LE(bounds[i - 1], bounds[i]);
      }
    }
  }
  // A zero fraction yields an empty slice, not a gap.
  const std::vector<int64_t> with_hole = SliceBoundaries(8, {0.5, 0.0, 0.5});
  EXPECT_EQ(with_hole[1], with_hole[2]);
  // All-zero fractions signal "coordinator computes": no slice reaches C.
  const std::vector<int64_t> none = SliceBoundaries(8, {0.0, 0.0});
  EXPECT_EQ(none.back(), 0);
  // Unnormalized fractions renormalize.
  EXPECT_EQ(SliceBoundaries(10, {2.0, 2.0}), SliceBoundaries(10, {0.5, 0.5}));
}

TEST(NetPlanTest, MakeEvenPlanSplitsEverySplittableNode) {
  const Model m = MakeLeNet5();
  const NetPlan plan = MakeEvenPlan(m.graph, 3);
  ASSERT_EQ(plan.fractions.size(), static_cast<size_t>(m.graph.size()));
  EXPECT_TRUE(plan.fractions[0].empty()) << "input stays on the coordinator";
  int split = 0;
  for (const Node& node : m.graph.nodes()) {
    const auto& row = plan.fractions[static_cast<size_t>(node.id)];
    if (row.empty()) {
      continue;
    }
    ++split;
    ASSERT_EQ(row.size(), 3u);
    for (double f : row) {
      EXPECT_DOUBLE_EQ(f, 1.0 / 3.0);
    }
  }
  EXPECT_GT(split, 0);
  EXPECT_NE(plan.ToString().find("channel plan"), std::string::npos);
}

// --- Coordinator: clean runs -------------------------------------------------

struct NetHarness {
  Model model;
  PreparedModel pm;
  Tensor input;

  explicit NetHarness(ExecConfig config = ExecConfig::AllF32())
      : model(MakeMaterialized()), pm(model, config), input(model.graph.node(0).out_shape,
                                                           DType::kF32) {
    if (config.storage == DType::kQUInt8) {
      std::vector<Tensor> calib;
      for (int i = 0; i < 2; ++i) {
        Tensor t(model.graph.node(0).out_shape, DType::kF32);
        FillUniform(t, 0xca11 + static_cast<uint64_t>(i));
        calib.push_back(std::move(t));
      }
      pm.Calibrate(calib);
    }
    FillUniform(input, 0x5eed);
  }

  static Model MakeMaterialized() {
    Model m = MakeLeNet5();
    m.MaterializeWeights();
    return m;
  }
};

TEST(NetCoordinatorTest, CleanRunIsByteIdenticalAcrossNodeCountsAndToTheExecutor) {
  NetHarness h;
  // Ground truth: the single-SoC executor on an all-CPU plan (the same
  // deterministic kernels the coordinator and every worker run).
  Executor ex(h.pm, MakeExynos7420());
  const Plan local = MakeSingleProcessorPlan(h.model.graph, ProcKind::kCpu);
  const RunResult want = ex.Run(local, &h.input);
  ASSERT_TRUE(want.output.has_value());

  uint64_t first_digest = 0;
  for (int n : {1, 2, 3, 4}) {
    const ClusterSpec cluster = MakeUniformCluster(n);
    Coordinator coord(h.pm, cluster);
    const NetRunResult r = coord.Run(MakeEvenPlan(h.model.graph, n), &h.input);
    ASSERT_TRUE(r.output.has_value()) << n;
    ASSERT_EQ(r.output->SizeBytes(), want.output->SizeBytes());
    EXPECT_EQ(std::memcmp(r.output->raw(), want.output->raw(),
                          static_cast<size_t>(r.output->SizeBytes())),
              0)
        << "distribution across " << n << " nodes changed the bytes";
    if (n == 1) {
      first_digest = r.output_digest;
    }
    EXPECT_EQ(r.output_digest, first_digest) << n;
    EXPECT_FALSE(r.degradation.degraded());
    EXPECT_GT(r.latency_us, 0.0);
    if (n >= 2) {
      EXPECT_GT(r.wire_messages, 0) << "the even plan must put workers to work";
    }
    const Report rep = net::VerifyNetRun(h.model.graph, cluster, r);
    EXPECT_TRUE(rep.ok()) << rep.ToString();
  }
}

TEST(NetCoordinatorTest, QuantizedRunIsByteIdenticalAcrossNodeCounts) {
  NetHarness h(ExecConfig::ProcessorFriendly());
  uint64_t first_digest = 0;
  for (int n : {1, 3}) {
    Coordinator coord(h.pm, MakeUniformCluster(n));
    const NetRunResult r = coord.Run(MakeEvenPlan(h.model.graph, n), &h.input);
    ASSERT_TRUE(r.output.has_value());
    if (n == 1) {
      first_digest = r.output_digest;
    }
    EXPECT_EQ(r.output_digest, first_digest);
  }
}

TEST(NetCoordinatorTest, TimingOnlyRunPricesTheSameMessagesAsTheFunctionalRun) {
  NetHarness h;
  const ClusterSpec cluster = MakeUniformCluster(3);
  const NetPlan plan = MakeEvenPlan(h.model.graph, 3);
  const FaultPlan faults = FaultPlan::Parse("seed=7;net.link@id:0@call:1=drop");

  Coordinator coord(h.pm, cluster);
  coord.SetFaultPlan(faults);
  const NetRunResult timing = coord.Run(plan);
  const NetRunResult functional = coord.Run(plan, &h.input);

  EXPECT_FALSE(timing.output.has_value());
  ASSERT_TRUE(functional.output.has_value());
  // Identical message sequences -> identical fault draws and latency: the
  // timing run predicts the functional one exactly.
  EXPECT_DOUBLE_EQ(timing.latency_us, functional.latency_us);
  EXPECT_EQ(timing.wire_messages, functional.wire_messages);
  EXPECT_EQ(timing.wire_bytes, functional.wire_bytes);
  ASSERT_EQ(timing.messages.size(), functional.messages.size());
  for (size_t i = 0; i < timing.messages.size(); ++i) {
    EXPECT_EQ(timing.messages[i].bytes, functional.messages[i].bytes) << i;
    EXPECT_EQ(timing.messages[i].attempts, functional.messages[i].attempts) << i;
    EXPECT_DOUBLE_EQ(timing.messages[i].arrive_us, functional.messages[i].arrive_us) << i;
  }
  ASSERT_EQ(timing.degradation.events.size(), functional.degradation.events.size());
}

TEST(NetCoordinatorTest, RunRejectsAMisshapenPlan) {
  NetHarness h;
  Coordinator coord(h.pm, MakeUniformCluster(2));
  NetPlan bad = MakeEvenPlan(h.model.graph, 2);
  bad.fractions.pop_back();
  EXPECT_THROW(coord.Run(bad, &h.input), Error);
  // A pipeline plan cannot be Run() and a channel plan cannot be pipelined.
  const net::NetPartitioner part(h.model.graph, coord.cluster());
  EXPECT_THROW(coord.Run(part.BuildPipeline(2)), Error);
  EXPECT_THROW(coord.RunPipeline(MakeEvenPlan(h.model.graph, 2), 4), Error);
  EXPECT_THROW(coord.RunPipeline(part.BuildPipeline(2), 0), Error);
}

// --- Fault recovery ----------------------------------------------------------

TEST(NetFaultTest, WorkerDeathReroutesAndStaysByteIdentical) {
  NetHarness h;
  const ClusterSpec cluster = MakeUniformCluster(3);
  const NetPlan plan = MakeEvenPlan(h.model.graph, 3);
  Coordinator coord(h.pm, cluster);
  const NetRunResult clean = coord.Run(plan, &h.input);

  coord.SetFaultPlan(FaultPlan::Parse("seed=7;net.worker@id:1=death"));
  const NetRunResult r = coord.Run(plan, &h.input);
  EXPECT_EQ(r.output_digest, clean.output_digest) << "recovery must not change bytes";
  EXPECT_TRUE(r.degradation.degraded());
  EXPECT_GE(r.degradation.worker_deaths, 1);
  EXPECT_GE(r.degradation.reroutes, 1);
  EXPECT_GE(r.degradation.heartbeat_timeouts, 1);
  ASSERT_EQ(r.worker_alive.size(), 3u);
  EXPECT_FALSE(r.worker_alive[1]);
  EXPECT_TRUE(std::isfinite(r.death_us[1]));
  EXPECT_GT(r.latency_us, clean.latency_us) << "the damage shows up in latency only";
  bool rerouted = false;
  for (const SliceRecord& s : r.slices) {
    rerouted = rerouted || s.rerouted;
    if (s.worker == 1 && s.delivered) {
      EXPECT_LE(s.end_us, r.death_us[1] + 1e-6);
    }
  }
  EXPECT_TRUE(rerouted);
  const Report rep = net::VerifyNetRun(h.model.graph, cluster, r);
  EXPECT_TRUE(rep.ok()) << rep.ToString();
}

TEST(NetFaultTest, DroppedMessagesAreRetransmittedWithBackoff) {
  NetHarness h;
  const ClusterSpec cluster = MakeUniformCluster(2);
  const NetPlan plan = MakeEvenPlan(h.model.graph, 2);
  Coordinator coord(h.pm, cluster);
  const NetRunResult clean = coord.Run(plan, &h.input);

  coord.SetFaultPlan(FaultPlan::Parse("seed=7;net.link@id:0@call:1=drop"));
  const NetRunResult r = coord.Run(plan, &h.input);
  EXPECT_EQ(r.output_digest, clean.output_digest);
  EXPECT_EQ(r.degradation.retransmits, 1);
  EXPECT_EQ(r.degradation.reroutes, 0) << "one drop never loses the worker";
  ASSERT_FALSE(r.messages.empty());
  EXPECT_EQ(r.messages[0].worker, 0);
  EXPECT_EQ(r.messages[0].attempts, 2);
  EXPECT_TRUE(r.messages[0].delivered);
  EXPECT_GT(r.latency_us, clean.latency_us);
  // The lost attempt still paid wire bytes.
  EXPECT_GT(r.wire_bytes, clean.wire_bytes);
  EXPECT_TRUE(net::VerifyNetRun(h.model.graph, cluster, r).ok());
}

TEST(NetFaultTest, PersistentDropExhaustsRetransmitsAndLosesTheWorker) {
  NetHarness h;
  const ClusterSpec cluster = MakeUniformCluster(2);
  const NetPlan plan = MakeEvenPlan(h.model.graph, 2);
  Coordinator coord(h.pm, cluster);
  const NetRunResult clean = coord.Run(plan, &h.input);

  coord.SetFaultPlan(FaultPlan::Parse("seed=7;net.link@id:0=drop"));
  const NetRunResult r = coord.Run(plan, &h.input);
  EXPECT_EQ(r.output_digest, clean.output_digest);
  EXPECT_FALSE(r.worker_alive[0]);
  EXPECT_TRUE(r.worker_alive[1]);
  EXPECT_GE(r.degradation.reroutes, 1);
  for (const MessageRecord& m : r.messages) {
    EXPECT_LE(m.attempts, cluster.max_retransmits + 1) << "bounded backoff";
    if (m.worker == 0) {
      EXPECT_FALSE(m.delivered);
    }
  }
  EXPECT_TRUE(net::VerifyNetRun(h.model.graph, cluster, r).ok());
}

TEST(NetFaultTest, PartitionTakesTheLinkDownForTheRun) {
  NetHarness h;
  const ClusterSpec cluster = MakeUniformCluster(3);
  const NetPlan plan = MakeEvenPlan(h.model.graph, 3);
  Coordinator coord(h.pm, cluster);
  const NetRunResult clean = coord.Run(plan, &h.input);

  coord.SetFaultPlan(FaultPlan::Parse("seed=9;net.link@id:0=partition"));
  const NetRunResult r = coord.Run(plan, &h.input);
  EXPECT_EQ(r.output_digest, clean.output_digest);
  EXPECT_GE(r.degradation.partitions, 1);
  EXPECT_FALSE(r.worker_alive[0]);
  // After the partition fires nothing more is sent on link 0 — the run
  // records at most the partitioned attempt.
  double last_send = -1.0;
  for (const MessageRecord& m : r.messages) {
    if (m.worker == 0) {
      last_send = std::max(last_send, m.send_us);
      EXPECT_FALSE(m.delivered);
    }
  }
  EXPECT_TRUE(net::VerifyNetRun(h.model.graph, cluster, r).ok());
}

TEST(NetFaultTest, SameSeedAndSpecYieldIdenticalTraces) {
  NetHarness h;
  const ClusterSpec cluster = MakeUniformCluster(3);
  const NetPlan plan = MakeEvenPlan(h.model.graph, 3);
  Coordinator coord(h.pm, cluster);
  coord.SetFaultPlan(
      FaultPlan::Parse("seed=11;net.link@id:0@prob:0.4=drop;net.worker@id:2=death"));
  const NetRunResult a = coord.Run(plan, &h.input);
  const NetRunResult b = coord.Run(plan, &h.input);
  EXPECT_DOUBLE_EQ(a.latency_us, b.latency_us);
  EXPECT_EQ(a.output_digest, b.output_digest);
  ASSERT_EQ(a.degradation.events.size(), b.degradation.events.size());
  for (size_t i = 0; i < a.degradation.events.size(); ++i) {
    EXPECT_EQ(a.degradation.events[i].ToString(), b.degradation.events[i].ToString()) << i;
  }
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].attempts, b.messages[i].attempts) << i;
    EXPECT_DOUBLE_EQ(a.messages[i].arrive_us, b.messages[i].arrive_us) << i;
  }
  // The degradation report renders its events.
  EXPECT_NE(a.degradation.ToString().find("degraded"), std::string::npos);
}

// --- VerifyNetRun negative cases ---------------------------------------------

class NetVerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = MakeUniformCluster(2);
    Coordinator coord(harness_.pm, cluster_);
    clean_ = coord.Run(MakeEvenPlan(harness_.model.graph, 2), &harness_.input);
    ASSERT_TRUE(net::VerifyNetRun(harness_.model.graph, cluster_, clean_).ok());
  }

  // Index of a delivered worker slice (the mutation target).
  size_t WorkerSliceIndex() const {
    for (size_t i = 0; i < clean_.slices.size(); ++i) {
      if (clean_.slices[i].worker >= 0 && clean_.slices[i].delivered) {
        return i;
      }
    }
    ADD_FAILURE() << "no worker slices in the clean run";
    return 0;
  }

  NetHarness harness_;
  ClusterSpec cluster_;
  NetRunResult clean_;
};

TEST_F(NetVerifyTest, MissingSliceRaisesCoverage) {
  NetRunResult r = clean_;
  r.slices.erase(r.slices.begin() + static_cast<int64_t>(WorkerSliceIndex()));
  const Report rep = net::VerifyNetRun(harness_.model.graph, cluster_, r);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.Has(DiagCode::kNetSliceCoverage));
}

TEST_F(NetVerifyTest, DuplicateSliceRaisesDoubleDelivery) {
  NetRunResult r = clean_;
  r.slices.push_back(r.slices[WorkerSliceIndex()]);
  const Report rep = net::VerifyNetRun(harness_.model.graph, cluster_, r);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.Has(DiagCode::kNetDoubleDelivery));
}

TEST_F(NetVerifyTest, OutOfRangeSliceRaisesCoverage) {
  NetRunResult r = clean_;
  SliceRecord& s = r.slices[WorkerSliceIndex()];
  s.c_end = harness_.model.graph.node(s.node).out_shape.c + 5;
  const Report rep = net::VerifyNetRun(harness_.model.graph, cluster_, r);
  EXPECT_TRUE(rep.Has(DiagCode::kNetSliceCoverage));
}

TEST_F(NetVerifyTest, AttemptCountPastTheBoundRaisesRetransmitMismatch) {
  NetRunResult r = clean_;
  ASSERT_FALSE(r.messages.empty());
  r.messages[0].attempts = cluster_.max_retransmits + 2;
  const Report rep = net::VerifyNetRun(harness_.model.graph, cluster_, r);
  EXPECT_TRUE(rep.Has(DiagCode::kNetRetransmitMismatch));
}

TEST_F(NetVerifyTest, UnaccountedRetransmitsRaiseRetransmitMismatch) {
  NetRunResult r = clean_;
  r.degradation.retransmits += 3;  // The report claims more than the messages.
  const Report rep = net::VerifyNetRun(harness_.model.graph, cluster_, r);
  EXPECT_TRUE(rep.Has(DiagCode::kNetRetransmitMismatch));
}

TEST_F(NetVerifyTest, MalformedMessagesRaiseMessageInvalid) {
  {
    NetRunResult r = clean_;
    r.messages[0].frags += 1;
    EXPECT_TRUE(net::VerifyNetRun(harness_.model.graph, cluster_, r)
                    .Has(DiagCode::kNetMessageInvalid));
  }
  {
    NetRunResult r = clean_;
    r.messages[0].worker = 99;
    EXPECT_TRUE(net::VerifyNetRun(harness_.model.graph, cluster_, r)
                    .Has(DiagCode::kNetMessageInvalid));
  }
  {
    NetRunResult r = clean_;
    r.messages[0].arrive_us = r.messages[0].send_us;  // Beats the speed of light.
    EXPECT_TRUE(net::VerifyNetRun(harness_.model.graph, cluster_, r)
                    .Has(DiagCode::kNetMessageInvalid));
  }
}

TEST_F(NetVerifyTest, ActivityPastADeathRaisesDeadWorkerActivity) {
  NetRunResult r = clean_;
  const SliceRecord& s = r.slices[WorkerSliceIndex()];
  r.worker_alive[static_cast<size_t>(s.worker)] = false;
  r.death_us[static_cast<size_t>(s.worker)] = s.end_us - 1.0;
  const Report rep = net::VerifyNetRun(harness_.model.graph, cluster_, r);
  EXPECT_TRUE(rep.Has(DiagCode::kNetDeadWorkerActivity));
}

// --- Pipeline ----------------------------------------------------------------

TEST(NetPipelineTest, StreamedItemsOverlapAcrossStages) {
  NetHarness h;
  const ClusterSpec cluster = MakeUniformCluster(2);
  const net::NetPartitioner part(h.model.graph, cluster);
  const NetPlan plan = part.BuildPipeline(2);
  ASSERT_EQ(plan.kind, net::NetPlanKind::kPipeline);
  Coordinator coord(h.pm, cluster);

  const net::PipelineResult one = coord.RunPipeline(plan, 1);
  const net::PipelineResult many = coord.RunPipeline(plan, 8);
  EXPECT_EQ(many.items, 8);
  EXPECT_GT(many.makespan_us, one.makespan_us);
  // Pipelining overlaps stages: 8 items cost far less than 8 serial runs.
  EXPECT_LT(many.makespan_us, 8.0 * one.makespan_us);
  EXPECT_GT(many.bottleneck_us, 0.0);
  EXPECT_NEAR(many.throughput_per_s, 8.0 / many.makespan_us * 1e6, 1e-6);
  EXPECT_GT(many.wire_bytes, 0);
  // Steady state: each extra item costs at least the bottleneck stage.
  EXPECT_GE(many.makespan_us - one.makespan_us, 7.0 * many.bottleneck_us - 1e-6);
}

// --- Metrics -----------------------------------------------------------------

TEST(NetMetricsTest, AddNetRunFoldsCountersAndHistograms) {
  NetHarness h;
  const ClusterSpec cluster = MakeUniformCluster(2);
  const NetPlan plan = MakeEvenPlan(h.model.graph, 2);
  Coordinator coord(h.pm, cluster);
  coord.SetFaultPlan(FaultPlan::Parse("seed=7;net.link@id:0@call:1=drop"));
  const NetRunResult r = coord.Run(plan, &h.input);

  trace::MetricsRegistry m;
  net::AddNetRun(m, r);
  EXPECT_EQ(m.counter("net.runs"), 1);
  EXPECT_EQ(m.counter("net.messages"), r.wire_messages);
  EXPECT_EQ(m.counter("net.bytes"), r.wire_bytes);
  EXPECT_EQ(m.counter("net.retransmits"), 1);
  EXPECT_EQ(m.counter("net.drops"), 1);
  EXPECT_EQ(m.counter("net.faults_injected"), r.degradation.faults_injected);
  const std::string text = m.ToString();
  EXPECT_NE(text.find("net.latency_us"), std::string::npos);
  EXPECT_NE(text.find("net.msg_bytes"), std::string::npos);
  net::AddNetRun(m, r);
  EXPECT_EQ(m.counter("net.runs"), 2) << "counters aggregate across runs";
}

// --- Serving integration -----------------------------------------------------

TEST(NetServeTest, ModelCachePricesServiceWithTheDistributedPlan) {
  const SocSpec soc = MakeExynos7420();
  const ExecConfig config = ExecConfig::ProcessorFriendly();
  serve::ModelCache::Options local_opts;
  local_opts.batch_sizes = {1};
  local_opts.lanes = 1;
  serve::ModelCache local(soc, config, local_opts);
  local.Register("lenet5");
  EXPECT_EQ(local.entry("lenet5", 1).net_plan, nullptr);

  serve::ModelCache::Options net_opts = local_opts;
  net_opts.net_nodes = 2;
  serve::ModelCache distributed(soc, config, net_opts);
  distributed.Register("lenet5");
  const serve::ModelCache::Entry& e = distributed.entry("lenet5", 1);
  ASSERT_NE(e.net_plan, nullptr);
  EXPECT_GT(e.service_us, 0.0);

  serve::ModelCache::Options bad = local_opts;
  bad.net_nodes = -1;
  EXPECT_THROW(serve::ModelCache(soc, config, bad), Error);
}

}  // namespace
}  // namespace ulayer
