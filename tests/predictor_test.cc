#include "core/predictor.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "models/model.h"

namespace ulayer {
namespace {

TEST(PredictorTest, FitsConvLayersWithin30Percent) {
  const Model m = MakeVgg16();
  const TimingModel tm(MakeExynos7420());
  const LatencyPredictor pred(tm, ExecConfig::AllF32(), {&m.graph});
  const auto fid = pred.Evaluate(m.graph);
  EXPECT_GT(fid.samples, 0);
  EXPECT_LT(fid.mean_abs_rel_err, 0.30) << "Neurosurgeon-style fit degraded";
}

TEST(PredictorTest, PredictsMonotonicInFraction) {
  const Model m = MakeVgg16();
  const TimingModel tm(MakeExynos7420());
  const LatencyPredictor pred(tm, ExecConfig::ProcessorFriendly(), {&m.graph});
  // A mid-network conv layer.
  const Node* conv = nullptr;
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kConv && n.out_shape.c == 256) {
      conv = &n;
      break;
    }
  }
  ASSERT_NE(conv, nullptr);
  double prev = 0.0;
  for (const double f : {0.25, 0.5, 0.75, 1.0}) {
    const double t = pred.PredictUs(m.graph, *conv, ProcKind::kCpu, f);
    EXPECT_GT(t, prev) << "latency must grow with the channel fraction";
    prev = t;
  }
}

TEST(PredictorTest, ZeroFractionIsFree) {
  const Model m = MakeLeNet5();
  const TimingModel tm(MakeExynos7420());
  const LatencyPredictor pred(tm, ExecConfig::AllF32(), {&m.graph});
  EXPECT_DOUBLE_EQ(pred.PredictUs(m.graph, m.graph.node(1), ProcKind::kCpu, 0.0), 0.0);
}

TEST(PredictorTest, ReflectsProcessorPreferences) {
  // Under processor-friendly quantization the predictor must know that the
  // CPU (QUInt8) and GPU (F16) have different speeds per layer.
  const Model m = MakeVgg16();
  const SocSpec soc = MakeExynos7880();
  const TimingModel tm(soc);
  const LatencyPredictor pred(tm, ExecConfig::ProcessorFriendly(), {&m.graph});
  // On the mid-range SoC the CPU should win big conv layers under QUInt8.
  const Node& conv = m.graph.node(1);
  const double cpu = pred.PredictUs(m.graph, conv, ProcKind::kCpu);
  const double gpu = pred.PredictUs(m.graph, conv, ProcKind::kGpu);
  EXPECT_GT(gpu, 0.0);
  EXPECT_GT(cpu, 0.0);
}

TEST(PredictorTest, GeneralizesAcrossNetworks) {
  // Train on VGG-16 + AlexNet, evaluate on GoogLeNet: error stays bounded.
  const Model vgg = MakeVgg16();
  const Model alex = MakeAlexNet();
  const Model goog = MakeGoogLeNet();
  const TimingModel tm(MakeExynos7420());
  const LatencyPredictor pred(tm, ExecConfig::AllQU8(), {&vgg.graph, &alex.graph});
  const auto fid = pred.Evaluate(goog.graph);
  EXPECT_LT(fid.mean_abs_rel_err, 0.6);
}

TEST(PredictorTest, ZeroLatencySamplesKeepFitFinite) {
  // A free-compute SoC (infinite throughput/bandwidth, no launch cost)
  // makes every training sample 0 us. log(0) = -inf used to poison the
  // normal equations, turning every later prediction into NaN; samples are
  // now floored at an epsilon so the fit stays finite.
  SocSpec soc = MakeExynos7420();
  for (ProcessorSpec* p : {&soc.cpu, &soc.gpu}) {
    p->gmacs_f32 = p->gmacs_f16 = p->gmacs_qu8 = std::numeric_limits<double>::infinity();
    p->gb_per_s = std::numeric_limits<double>::infinity();
    p->kernel_launch_us = 0.0;
  }
  const Model m = MakeLeNet5();
  const TimingModel tm(soc);
  const LatencyPredictor pred(tm, ExecConfig::AllF32(), {&m.graph});
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kInput) {
      continue;
    }
    for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
      const double t = pred.PredictUs(m.graph, n, proc);
      EXPECT_TRUE(std::isfinite(t)) << n.desc.name << " " << ProcKindName(proc);
      EXPECT_GE(t, 0.0);
    }
  }
}

TEST(PredictorTest, NonFiniteSamplesAreSkipped) {
  // Zero throughput yields t = inf; such samples must be dropped rather
  // than absorbed into the fit.
  SocSpec soc = MakeExynos7420();
  soc.cpu.gmacs_f32 = 0.0;
  const Model m = MakeLeNet5();
  const TimingModel tm(soc);
  const LatencyPredictor pred(tm, ExecConfig::AllF32(), {&m.graph});
  // GPU predictions (finite side) must still be finite and positive.
  const auto fid = pred.Evaluate(m.graph);
  EXPECT_GT(fid.samples, 0);
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kInput) {
      continue;
    }
    const double t = pred.PredictUs(m.graph, n, ProcKind::kGpu);
    EXPECT_TRUE(std::isfinite(t)) << n.desc.name;
  }
}

TEST(PredictorTest, ZeroChannelNodeIsFreeNotUB) {
  // A corrupt graph can carry out_shape.c == 0; FractionChannels used to
  // call std::clamp(x, 1, 0) on it — hi < lo is UB. Such nodes must price
  // as free instead (and never reach ComputeWork with a bogus slice).
  Node in;
  in.id = 0;
  in.desc.kind = LayerKind::kInput;
  in.desc.name = "in";
  in.out_shape = Shape(1, 4, 8, 8);
  Node zero;
  zero.id = 1;
  zero.desc.kind = LayerKind::kRelu;
  zero.desc.name = "zero-c";
  zero.inputs = {0};
  zero.out_shape = Shape(1, 0, 8, 8);  // Degenerate: zero output channels.
  const Graph g = Graph::UncheckedFromNodes({in, zero});

  const TimingModel tm(MakeExynos7420());
  // Fitting over the corrupt graph must not trip UB either.
  const LatencyPredictor pred(tm, ExecConfig::AllF32(), {&g});
  for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
    for (const double f : {0.25, 0.5, 1.0}) {
      EXPECT_DOUBLE_EQ(pred.PredictUs(g, g.node(1), proc, f), 0.0);
    }
  }
}

TEST(PredictorTest, CorrectionsScalePredictions) {
  const Model m = MakeVgg16();
  const TimingModel tm(MakeExynos7420());
  LatencyPredictor pred(tm, ExecConfig::AllF32(), {&m.graph});
  const Node& conv = m.graph.node(1);
  const double base = pred.PredictUs(m.graph, conv, ProcKind::kGpu);
  ASSERT_GT(base, 0.0);

  // EWMA toward an observed 3x slowdown with alpha 1 jumps straight there.
  pred.UpdateCorrection(LayerKind::kConv, ProcKind::kGpu, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(pred.PredictUs(m.graph, conv, ProcKind::kGpu), 3.0 * base);
  // Other cells are untouched.
  EXPECT_DOUBLE_EQ(pred.corrections().Get(LayerKind::kConv, ProcKind::kCpu), 1.0);

  // Snapshot/Restore round-trips the exact prediction state.
  const CorrectionTable snap = pred.SnapshotCorrections();
  pred.UpdateCorrection(LayerKind::kConv, ProcKind::kGpu, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(pred.PredictUs(m.graph, conv, ProcKind::kGpu), base);
  pred.RestoreCorrections(snap);
  EXPECT_DOUBLE_EQ(pred.PredictUs(m.graph, conv, ProcKind::kGpu), 3.0 * base);
}

TEST(PredictorTest, UnseenKindFallsBackToMeasurement) {
  // Train only on a conv-free graph; predicting a conv must still work (the
  // fallback queries the timing model directly).
  Graph train;
  const int tin = train.AddInput(Shape(1, 8, 8, 8));
  train.AddPool("p", tin, PoolKind::kMax, 2, 2);

  Graph g;
  const int in = g.AddInput(Shape(1, 8, 8, 8));
  const int c = g.AddConv("c", in, 8, 3, 1, 1, true);

  const TimingModel tm(MakeExynos7420());
  const LatencyPredictor pred(tm, ExecConfig::AllF32(), {&train});
  const double t = pred.PredictUs(g, g.node(c), ProcKind::kCpu);
  const LayerWork w = ComputeWork(g, g.node(c), DType::kF32);
  EXPECT_DOUBLE_EQ(t, tm.KernelLatencyUs(w, ProcKind::kCpu, DType::kF32));
}

}  // namespace
}  // namespace ulayer
