// The closed adaptation loop (DESIGN.md Section 16): drift-fed correction
// table, health-keyed plan cache, two-way throttle recovery and the H9xx
// invariants.
#include "core/adapt.h"

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/runtime.h"
#include "io/io.h"
#include "tensor/tensor.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

using fault::FaultPlan;

constexpr const char* kThrottleSpec = "gpu.kernel=slow:2.5";

ULayerRuntime::Options AdaptiveOptions() {
  ULayerRuntime::Options opts;
  opts.adapt.enabled = true;
  return opts;
}

// Sum of per-run latencies over `runs` consecutive runs.
double RunTotalUs(ULayerRuntime& rt, int runs, std::vector<double>* latencies = nullptr) {
  double total = 0.0;
  for (int i = 0; i < runs; ++i) {
    const RunResult r = rt.Run();
    total += r.latency_us;
    if (latencies != nullptr) {
      latencies->push_back(r.latency_us);
    }
  }
  return total;
}

// --- CorrectionTable ---------------------------------------------------------

TEST(CorrectionTableTest, StartsIdentityAndClampsUpdates) {
  CorrectionTable t;
  EXPECT_TRUE(t.IsIdentity());
  EXPECT_DOUBLE_EQ(t.Get(LayerKind::kConv, ProcKind::kGpu), 1.0);

  t.Update(LayerKind::kConv, ProcKind::kGpu, 3.0, 0.5);
  EXPECT_DOUBLE_EQ(t.Get(LayerKind::kConv, ProcKind::kGpu), 2.0);
  EXPECT_FALSE(t.IsIdentity());
  // Other cells are untouched.
  EXPECT_DOUBLE_EQ(t.Get(LayerKind::kConv, ProcKind::kCpu), 1.0);
  EXPECT_DOUBLE_EQ(t.Get(LayerKind::kPool, ProcKind::kGpu), 1.0);

  // Non-finite / non-positive observations are ignored; huge ones clamp.
  t.Update(LayerKind::kConv, ProcKind::kGpu, -1.0, 0.5);
  t.Update(LayerKind::kConv, ProcKind::kGpu, 0.0, 0.5);
  EXPECT_DOUBLE_EQ(t.Get(LayerKind::kConv, ProcKind::kGpu), 2.0);
  t.Set(LayerKind::kConv, ProcKind::kGpu, 1e9);
  EXPECT_DOUBLE_EQ(t.Get(LayerKind::kConv, ProcKind::kGpu), CorrectionTable::kMaxScale);
  t.Set(LayerKind::kConv, ProcKind::kGpu, 1e-9);
  EXPECT_DOUBLE_EQ(t.Get(LayerKind::kConv, ProcKind::kGpu), CorrectionTable::kMinScale);
}

TEST(CorrectionTableTest, FingerprintQuantizesByBucket) {
  const double growth = 1.05;
  CorrectionTable a;
  CorrectionTable b;
  EXPECT_EQ(a.Fingerprint(growth), b.Fingerprint(growth));

  // Scales within half a growth step of each other share a bucket.
  a.Set(LayerKind::kConv, ProcKind::kGpu, 2.5);
  b.Set(LayerKind::kConv, ProcKind::kGpu, 2.52);
  EXPECT_EQ(CorrectionTable::BucketOf(2.5, growth), CorrectionTable::BucketOf(2.52, growth));
  EXPECT_EQ(a.Fingerprint(growth), b.Fingerprint(growth));

  // A different bucket changes the fingerprint.
  b.Set(LayerKind::kConv, ProcKind::kGpu, 3.0);
  EXPECT_NE(a.Fingerprint(growth), b.Fingerprint(growth));

  EXPECT_EQ(CorrectionTable::BucketOf(1.0, growth), 0);
  EXPECT_GT(CorrectionTable::BucketOf(1.5, growth), 0);
  EXPECT_LT(CorrectionTable::BucketOf(0.5, growth), 0);
}

TEST(CorrectionTableTest, ToStringListsOnlyNonIdentityCells) {
  CorrectionTable t;
  EXPECT_EQ(t.ToString(), "identity");
  t.Set(LayerKind::kConv, ProcKind::kGpu, 2.5);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("conv"), std::string::npos);
  EXPECT_NE(s.find("gpu"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

// --- PlanCache ---------------------------------------------------------------

Plan TaggedPlan(int64_t batch) {
  Plan p;
  p.batch = batch;  // Distinguishes cached plans in this unit test.
  return p;
}

TEST(PlanCacheTest, HitMissEvictionAreDeterministic) {
  PlanCache cache(2);
  const PlanCacheKey k1{true, 0, 0x1};
  const PlanCacheKey k2{true, 5, 0x2};
  const PlanCacheKey k3{false, 0, 0x3};

  EXPECT_EQ(cache.Lookup(k1), nullptr);
  cache.Insert(k1, TaggedPlan(1));
  cache.Insert(k2, TaggedPlan(2));
  ASSERT_NE(cache.Lookup(k1), nullptr);
  EXPECT_EQ(cache.Lookup(k1)->batch, 1);

  // k1 was just used, so inserting k3 evicts k2 (LRU).
  cache.Insert(k3, TaggedPlan(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(k2), nullptr);
  ASSERT_NE(cache.Lookup(k3), nullptr);
  EXPECT_EQ(cache.Lookup(k3)->batch, 3);

  const PlanCacheStats& s = cache.stats();
  EXPECT_EQ(s.insertions, 3);
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.hits, 4);
  EXPECT_EQ(s.misses, 2);

  // Re-inserting an existing key replaces in place, no eviction.
  cache.Insert(k3, TaggedPlan(4));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(k3)->batch, 4);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  cache.Insert(PlanCacheKey{}, TaggedPlan(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(PlanCacheKey{}), nullptr);
}

// --- Mode lattice (satellite: no std::max over raw enum values) -------------

TEST(RunModeLatticeTest, PinsTheSeverityRanking) {
  EXPECT_LT(RunModeSeverity(RunMode::kNormal), RunModeSeverity(RunMode::kDegraded));
  EXPECT_LT(RunModeSeverity(RunMode::kDegraded), RunModeSeverity(RunMode::kCpuOnly));
  EXPECT_EQ(CombineRunMode(RunMode::kNormal, RunMode::kDegraded), RunMode::kDegraded);
  EXPECT_EQ(CombineRunMode(RunMode::kDegraded, RunMode::kNormal), RunMode::kDegraded);
  EXPECT_EQ(CombineRunMode(RunMode::kCpuOnly, RunMode::kDegraded), RunMode::kCpuOnly);
  EXPECT_EQ(CombineRunMode(RunMode::kNormal, RunMode::kNormal), RunMode::kNormal);
}

// --- Drift convergence under a persistent throttle ---------------------------

TEST(AdaptationTest, CorrectionTableConvergesUnderSlowFaults) {
  const Model m = MakeGoogLeNet();
  ULayerRuntime::Options opts = AdaptiveOptions();
  opts.faults = FaultPlan::Parse(kThrottleSpec);
  ULayerRuntime rt(m, MakeExynos7420(), opts);

  RunTotalUs(rt, 8);
  ASSERT_EQ(rt.drift_history().size(), 8u);
  // The EWMA must converge monotonically on a stationary fault schedule and
  // end within the 5% acceptance band (H903).
  EXPECT_TRUE(VerifyDriftConvergence(rt.drift_history(), 0.05, 1e-9).ok())
      << VerifyDriftConvergence(rt.drift_history(), 0.05, 1e-9).ToString();
  EXPECT_LE(rt.last_relative_deviation(), 0.05);
  EXPECT_GT(rt.replans(), 0) << "sustained drift must trigger a replan";
  // The throttle shows up in the GPU corrections, not the CPU ones.
  EXPECT_GT(rt.predictor().corrections().Get(LayerKind::kConv, ProcKind::kGpu), 1.5);
  EXPECT_DOUBLE_EQ(rt.predictor().corrections().Get(LayerKind::kConv, ProcKind::kCpu), 1.0);
  // H901: the table stays inside the sanity band throughout.
  EXPECT_TRUE(VerifyCorrectionTable(rt.predictor().corrections()).ok());
  // H902: every cached plan is coherent with its key.
  EXPECT_TRUE(VerifyPlanCache(m.graph, rt.plan_cache(), rt.config()).ok())
      << VerifyPlanCache(m.graph, rt.plan_cache(), rt.config()).ToString();
}

// The committed deliverable scenario: baseline -> throttle -> recovery.
// Adaptive replanning must beat the static plan while throttled, and after
// the throttle clears latency must return to within 2% of a never-throttled
// runtime.
TEST(AdaptationTest, ThrottleRampAdaptiveBeatsStaticAndRecovers) {
  const Model m = MakeGoogLeNet();
  const SocSpec soc = MakeExynos7420();
  constexpr int kBaseline = 2;
  constexpr int kThrottled = 6;
  constexpr int kRecovery = 8;

  ULayerRuntime adaptive(m, soc, AdaptiveOptions());
  ULayerRuntime::Options static_opts;
  static_opts.degradation_replan = false;
  ULayerRuntime static_rt(m, soc, static_opts);
  ULayerRuntime never_throttled(m, soc);

  // Phase 1: clean baseline. Identical plans, identical latency.
  const double adaptive_base = RunTotalUs(adaptive, kBaseline) / kBaseline;
  const double static_base = RunTotalUs(static_rt, kBaseline) / kBaseline;
  EXPECT_DOUBLE_EQ(adaptive_base, static_base);
  EXPECT_EQ(adaptive.replans(), 0);

  // Phase 2: thermal throttle. The adaptive runtime learns the slowdown and
  // shifts work to the CPU; the static runtime keeps the stale split.
  adaptive.SetFaultPlan(FaultPlan::Parse(kThrottleSpec));
  static_rt.SetFaultPlan(FaultPlan::Parse(kThrottleSpec));
  const double adaptive_throttled = RunTotalUs(adaptive, kThrottled);
  const double static_throttled = RunTotalUs(static_rt, kThrottled);
  EXPECT_LT(adaptive_throttled, static_throttled)
      << "adaptive replanning must beat the static plan under throttle";
  EXPECT_GT(adaptive.replans(), 0);
  // Convergence within the throttle phase: deviations from its onset are
  // monotone non-increasing and end within 5% (H903).
  const std::vector<double> throttle_devs(adaptive.drift_history().begin() + kBaseline,
                                          adaptive.drift_history().end());
  EXPECT_TRUE(VerifyDriftConvergence(throttle_devs, 0.05).ok())
      << VerifyDriftConvergence(throttle_devs, 0.05).ToString();

  // Phase 3: the throttle clears. Corrections decay back toward identity
  // and the plan returns to (near) the baseline split.
  adaptive.SetFaultPlan(FaultPlan());
  never_throttled.SetFaultPlan(FaultPlan());
  std::vector<double> recovery_lat;
  RunTotalUs(adaptive, kRecovery, &recovery_lat);
  std::vector<double> clean_lat;
  RunTotalUs(never_throttled, kRecovery, &clean_lat);
  EXPECT_LE(recovery_lat.back(), clean_lat.back() * 1.02)
      << "post-recovery latency must return to within 2% of never-throttled";
  EXPECT_LE(adaptive.last_relative_deviation(), 0.05);
  EXPECT_TRUE(VerifyCorrectionTable(adaptive.predictor().corrections()).ok());
}

// --- Functional byte-identity with adaptation on/off -------------------------

TEST(AdaptationTest, FunctionalDigestsAreIdenticalAdaptOnAndOff) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  Tensor input(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(input, 4242, -1.0f, 1.0f);

  ULayerRuntime::Options off;
  off.config = ExecConfig::AllF32();
  off.faults = FaultPlan::Parse(kThrottleSpec);
  ULayerRuntime rt_off(m, MakeExynos7420(), off);

  ULayerRuntime::Options on = off;
  on.adapt.enabled = true;
  ULayerRuntime rt_on(m, MakeExynos7420(), on);

  // Multiple runs so the adaptive runtime actually replans in between: the
  // functional output must not depend on the plan (the established
  // byte-identity invariant) nor on the adaptation machinery.
  for (int i = 0; i < 4; ++i) {
    const RunResult a = rt_off.Run(&input);
    const RunResult b = rt_on.Run(&input);
    ASSERT_TRUE(a.output.has_value());
    ASSERT_TRUE(b.output.has_value());
    ASSERT_EQ(a.output->SizeBytes(), b.output->SizeBytes());
    EXPECT_EQ(std::memcmp(a.output->raw(), b.output->raw(),
                          static_cast<size_t>(a.output->SizeBytes())),
              0)
        << "run " << i;
  }
}

// --- Plan cache on the runtime ----------------------------------------------

TEST(AdaptationTest, CacheHitServesReplanWithoutPartitionerBuild) {
  const Model m = MakeGoogLeNet();
  ULayerRuntime::Options opts = AdaptiveOptions();
  // Coarse buckets: the small residual corrections after recovery quantize
  // to the identity fingerprint, so returning to health hits the seeded
  // baseline-key entry.
  opts.adapt.bucket_growth = 2.0;
  ULayerRuntime rt(m, MakeExynos7420(), opts);
  const std::string baseline_plan = PlanToText(rt.plan(), m.graph);
  EXPECT_EQ(rt.partitioner_builds(), 1) << "constructor build only";
  EXPECT_EQ(rt.plan_cache().stats().insertions, 1) << "baseline plan seeded";

  rt.SetFaultPlan(FaultPlan::Parse(kThrottleSpec));
  RunTotalUs(rt, 6);
  const int64_t builds_after_throttle = rt.partitioner_builds();
  const int replans_after_throttle = rt.replans();
  EXPECT_GT(replans_after_throttle, 0);
  EXPECT_GT(builds_after_throttle, 1) << "a new health state misses the cache and builds";

  rt.SetFaultPlan(FaultPlan());
  RunTotalUs(rt, 8);
  EXPECT_GT(rt.replans(), replans_after_throttle) << "recovery must replan";
  EXPECT_GT(rt.plan_cache().stats().hits, 0)
      << "the recovery replan must hit the cached baseline plan";
  // Every installed plan is either a fresh build or a cache hit that
  // performed no Partitioner::Build (the constructor's build is not a
  // replan).
  EXPECT_EQ(rt.replans(),
            static_cast<int>(rt.partitioner_builds() - 1 + rt.plan_cache().stats().hits))
      << "replans = builds + cache hits";
  EXPECT_EQ(PlanToText(rt.plan(), m.graph), baseline_plan)
      << "recovered health must restore the baseline plan";
  EXPECT_TRUE(VerifyPlanCache(m.graph, rt.plan_cache(), rt.config()).ok());
}

// --- Snapshot / Restore replay ----------------------------------------------

TEST(AdaptationTest, RestoredSnapshotReplaysIdentically) {
  const Model m = MakeGoogLeNet();
  ULayerRuntime::Options opts = AdaptiveOptions();
  opts.faults = FaultPlan::Parse(kThrottleSpec);
  ULayerRuntime rt(m, MakeExynos7420(), opts);

  RunTotalUs(rt, 3);
  const ULayerRuntime::AdaptSnapshot snap = rt.Snapshot();

  std::vector<double> first;
  RunTotalUs(rt, 5, &first);
  const CorrectionTable end_corrections = rt.predictor().SnapshotCorrections();
  const int end_replans = rt.replans();
  const std::string end_plan = PlanToText(rt.plan(), m.graph);

  rt.Restore(snap);
  EXPECT_EQ(rt.replans(), snap.replans);
  std::vector<double> second;
  RunTotalUs(rt, 5, &second);

  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i], second[i]) << "replayed run " << i;
  }
  EXPECT_EQ(rt.predictor().SnapshotCorrections(), end_corrections);
  EXPECT_EQ(rt.replans(), end_replans);
  EXPECT_EQ(PlanToText(rt.plan(), m.graph), end_plan);
}

// --- Exception safety: a throwing replan leaves the runtime usable ----------

TEST(AdaptationTest, ThrowingReplanHookLeavesRuntimeUsable) {
  const Model m = MakeGoogLeNet();
  ULayerRuntime::Options opts = AdaptiveOptions();
  opts.faults = FaultPlan::Parse(kThrottleSpec);
  ULayerRuntime rt(m, MakeExynos7420(), opts);
  const std::string plan_before = PlanToText(rt.plan(), m.graph);

  rt.set_on_replan([](const Plan&) { throw Error(ErrorCode::kVerify, "injected hook failure"); });
  bool threw = false;
  for (int i = 0; i < 4 && !threw; ++i) {
    try {
      rt.Run();
    } catch (const Error&) {
      threw = true;
    }
  }
  ASSERT_TRUE(threw) << "sustained drift must reach the replan hook";
  EXPECT_EQ(PlanToText(rt.plan(), m.graph), plan_before)
      << "a failed replan must not install a partial plan";
  EXPECT_EQ(rt.replans(), 0);

  // With the hook removed the loop resumes: the runtime was not corrupted.
  rt.set_on_replan(nullptr);
  const RunResult r = rt.Run();
  EXPECT_GT(r.latency_us, 0.0);
  RunTotalUs(rt, 3);
  EXPECT_GT(rt.replans(), 0);
  EXPECT_TRUE(VerifyCorrectionTable(rt.predictor().corrections()).ok());
}

// --- Two-way throttle ratchet (satellite 1, adaptation off) -----------------

TEST(ThrottleRecoveryTest, ThrottleThenRecoverReturnsToOriginalSplit) {
  const Model m = MakeVgg16();
  ULayerRuntime rt(m, MakeExynos7420());
  const std::string original_plan = PlanToText(rt.plan(), m.graph);

  // Throttle: the scalar policy rescales GPU estimates upward (one replan).
  rt.SetFaultPlan(FaultPlan::Parse(kThrottleSpec));
  rt.Run();
  rt.Run();
  EXPECT_GT(rt.gpu_health().applied_time_scale, 1.25);
  EXPECT_EQ(rt.mode(), RunMode::kDegraded);
  const int replans_throttled = rt.replans();
  EXPECT_GE(replans_throttled, 1);
  EXPECT_NE(PlanToText(rt.plan(), m.graph), original_plan);

  // Recovery: the observed ratio returns to 1.0. After
  // replan_after_failures (default 2) consecutive clean below-scale runs
  // the policy replans back down — the ratchet turns both ways.
  rt.SetFaultPlan(FaultPlan());
  rt.Run();
  EXPECT_EQ(rt.gpu_health().clean_below_scale_runs, 1);
  EXPECT_EQ(rt.replans(), replans_throttled) << "one clean run is not enough";
  rt.Run();
  EXPECT_DOUBLE_EQ(rt.gpu_health().applied_time_scale, 1.0);
  EXPECT_EQ(rt.replans(), replans_throttled + 1);
  EXPECT_EQ(rt.mode(), RunMode::kNormal);
  EXPECT_EQ(PlanToText(rt.plan(), m.graph), original_plan)
      << "recovered health must restore the original split";
  // Stable afterwards: no churn.
  rt.Run();
  EXPECT_EQ(rt.replans(), replans_throttled + 1);
}

TEST(ThrottleRecoveryTest, ProbationProbeRejoinsRecoveredGpu) {
  const Model m = MakeGoogLeNet();
  ULayerRuntime::Options opts;
  opts.gpu_probe_interval = 2;
  opts.faults = FaultPlan::Parse("gpu.kernel@call:1=device-lost");
  ULayerRuntime rt(m, MakeExynos7420(), opts);
  const std::string original_plan = PlanToText(rt.plan(), m.graph);

  rt.Run();
  EXPECT_TRUE(rt.gpu_health().excluded);
  EXPECT_EQ(rt.mode(), RunMode::kCpuOnly);

  // The device recovers, but a CPU-only plan yields no GPU evidence — only
  // the periodic probe can discover it.
  rt.SetFaultPlan(FaultPlan());
  rt.Run();  // CPU-only, no evidence.
  EXPECT_FALSE(rt.gpu_health().evidence_last_run);
  EXPECT_TRUE(rt.gpu_health().excluded);
  rt.Run();  // Probation clock expires: next plan is an optimistic probe.
  EXPECT_TRUE(rt.gpu_health().probing);
  rt.Run();  // The probe run is clean: the GPU rejoins.
  EXPECT_FALSE(rt.gpu_health().probing);
  EXPECT_FALSE(rt.gpu_health().excluded);
  EXPECT_EQ(rt.mode(), RunMode::kNormal);
  EXPECT_EQ(PlanToText(rt.plan(), m.graph), original_plan);
}

TEST(ThrottleRecoveryTest, FailedProbeReopensTheBreaker) {
  const Model m = MakeGoogLeNet();
  ULayerRuntime::Options opts;
  opts.gpu_probe_interval = 1;
  // Every GPU-touching run keeps dying: the first kernel call of each run.
  opts.faults = FaultPlan::Parse("gpu.kernel@call:1=device-lost");
  ULayerRuntime rt(m, MakeExynos7420(), opts);

  rt.Run();
  EXPECT_TRUE(rt.gpu_health().excluded);
  rt.Run();  // Schedules the probe.
  EXPECT_TRUE(rt.gpu_health().probing);
  rt.Run();  // Probe run dies again: back to CPU-only.
  EXPECT_FALSE(rt.gpu_health().probing);
  EXPECT_TRUE(rt.gpu_health().excluded);
  EXPECT_EQ(rt.mode(), RunMode::kCpuOnly);
  for (const NodeAssignment& a : rt.plan().nodes) {
    EXPECT_NE(a.kind, StepKind::kCooperative);
    EXPECT_EQ(a.proc, ProcKind::kCpu);
  }
}

// --- Stale-health tracking (satellite 3) -------------------------------------

TEST(ThrottleRecoveryTest, CpuOnlyRunsCarryNoGpuEvidence) {
  const Model m = MakeGoogLeNet();
  ULayerRuntime::Options opts;
  // Order matters: the first matching rule wins, so the scoped device-lost
  // rule must precede the blanket slowdown.
  opts.faults = FaultPlan::Parse("gpu.kernel@call:1=device-lost;gpu.kernel=slow:2.5");
  ULayerRuntime rt(m, MakeExynos7420(), opts);
  rt.Run();
  ASSERT_TRUE(rt.gpu_health().excluded);
  const double last_ratio = rt.gpu_health().observed_over_predicted;

  // CPU-only run: the GPU-era ratio is retained as history, but the run is
  // explicitly marked evidence-free instead of smuggling a 0.0 sentinel.
  rt.SetFaultPlan(FaultPlan());
  rt.Run();
  EXPECT_FALSE(rt.gpu_health().evidence_last_run);
  EXPECT_DOUBLE_EQ(rt.gpu_health().observed_over_predicted, last_ratio);
}

// --- H-series verifier negatives ---------------------------------------------

TEST(AdaptVerifyTest, CorrectionTableOutOfBandIsH901) {
  // The table's own setters clamp, so corrupt state can only be observed
  // through a hand-built struct — mimic one via Restore on a predictor? The
  // verifier is the unit under test here, so check the clean path and the
  // series checker instead; out-of-band values cannot be constructed through
  // the public API (which is the point of the clamp).
  CorrectionTable t;
  EXPECT_TRUE(VerifyCorrectionTable(t).ok());
  t.Set(LayerKind::kConv, ProcKind::kGpu, CorrectionTable::kMaxScale);
  EXPECT_TRUE(VerifyCorrectionTable(t).ok()) << "the band edges are legal";
}

TEST(AdaptVerifyTest, IncoherentCacheIsH902) {
  const Model m = MakeLeNet5();
  const ExecConfig config = ExecConfig::ProcessorFriendly();
  PlanCache cache(4);

  // A GPU-touching plan filed under a gpu_available=false key.
  Plan gpu_plan = MakeSingleProcessorPlan(m.graph, ProcKind::kGpu);
  PlanCacheKey no_gpu_key;
  no_gpu_key.gpu_available = false;
  cache.Insert(no_gpu_key, gpu_plan);
  const Report r = VerifyPlanCache(m.graph, cache, config);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.Has(DiagCode::kAdaptCacheIncoherent));

  // A structurally invalid plan under any key.
  PlanCache cache2(4);
  Plan bad = MakeSingleProcessorPlan(m.graph, ProcKind::kCpu);
  bad.nodes.pop_back();  // Size mismatch.
  cache2.Insert(PlanCacheKey{}, bad);
  EXPECT_TRUE(VerifyPlanCache(m.graph, cache2, config).Has(DiagCode::kAdaptCacheIncoherent));

  // Coherent cache verifies clean.
  PlanCache cache3(4);
  cache3.Insert(PlanCacheKey{}, MakeSingleProcessorPlan(m.graph, ProcKind::kCpu));
  EXPECT_TRUE(VerifyPlanCache(m.graph, cache3, config).ok());
}

TEST(AdaptVerifyTest, NonConvergingSeriesIsH903) {
  EXPECT_TRUE(VerifyDriftConvergence({1.5, 0.4, 0.1, 0.03}, 0.05).ok());
  EXPECT_TRUE(VerifyDriftConvergence({}, 0.05).ok());

  const Report rising = VerifyDriftConvergence({0.4, 0.1, 0.2, 0.03}, 0.05);
  EXPECT_FALSE(rising.ok());
  EXPECT_TRUE(rising.Has(DiagCode::kAdaptNotConverging));

  const Report high_tail = VerifyDriftConvergence({1.5, 0.4, 0.2}, 0.05);
  EXPECT_FALSE(high_tail.ok());
  EXPECT_TRUE(high_tail.Has(DiagCode::kAdaptNotConverging));
}

}  // namespace
}  // namespace ulayer
