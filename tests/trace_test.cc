// Observability layer tests (DESIGN.md Section 11):
//  - Trace-off runs record nothing and are bit-identical to traced runs
//    (latency, busy time, kernel trace, output bytes).
//  - ULAYER_TRACE environment toggle.
//  - Golden Chrome trace-event JSON: the export round-trips through the
//    bundled parser and matches the documented schema (metadata events,
//    per-device tracks, gap track, queue-depth counters, bit-exact
//    timestamps).
//  - Trace invariants (T401-T406) hold across zoo models x plans x thread
//    budgets x fault specs, and queue depth stays coherent.
//  - Predictor-drift table: fault-free ratios are 1 to round-off; injected
//    slowdowns surface as the throttle factor.
//  - MetricsRegistry aggregation across runs.
#include "trace/trace.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/executor.h"
#include "core/prepared.h"
#include "fault/fault.h"
#include "models/model.h"
#include "tensor/rng.h"
#include "trace/chrome.h"
#include "trace/metrics.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

using trace::FaultTag;
using trace::IsOccupying;
using trace::JsonValue;
using trace::ParseJson;
using trace::RunTrace;
using trace::Span;
using trace::SpanKind;

Plan MakeHalfSplitPlan(const Graph& g) {
  Plan plan = MakeSingleProcessorPlan(g, ProcKind::kCpu);
  for (const Node& n : g.nodes()) {
    if (n.desc.kind == LayerKind::kInput || n.desc.kind == LayerKind::kSoftmax ||
        n.desc.kind == LayerKind::kConcat || n.out_shape.c < 2) {
      continue;
    }
    NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    a.kind = StepKind::kCooperative;
    a.cpu_fraction = 0.5;
  }
  return plan;
}

// Runs `plan` once on a fresh executor with tracing as requested.
RunResult TracedRun(const Model& m, ExecConfig cfg, const Plan& plan,
                    const std::string& fault_spec = std::string()) {
  cfg.trace = true;
  PreparedModel pm(m, cfg);
  Executor ex(pm, MakeExynos7420());
  if (!fault_spec.empty()) {
    ex.SetFaultPlan(fault::FaultPlan::Parse(fault_spec));
  }
  return ex.Run(plan);
}

// --- Zero overhead when off --------------------------------------------------

TEST(TraceTest, TraceOffRecordsNothingAndTimelinesMatchTraceOn) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  Tensor input(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(input, 1234, -1.0f, 1.0f);
  const Plan plan = MakeHalfSplitPlan(m.graph);

  ExecConfig off_cfg = ExecConfig::AllF32();
  off_cfg.trace = false;
  PreparedModel off_pm(m, off_cfg);
  Executor off_ex(off_pm, MakeExynos7420());
  const RunResult off = off_ex.Run(plan, &input);
  EXPECT_FALSE(off.run_trace.enabled);
  EXPECT_TRUE(off.run_trace.spans.empty());
  EXPECT_TRUE(off.run_trace.queue_depth.empty());

  ExecConfig on_cfg = ExecConfig::AllF32();
  on_cfg.trace = true;
  PreparedModel on_pm(m, on_cfg);
  Executor on_ex(on_pm, MakeExynos7420());
  const RunResult on = on_ex.Run(plan, &input);
  ASSERT_TRUE(on.run_trace.enabled);
  EXPECT_FALSE(on.run_trace.spans.empty());

  // Recording must not perturb the simulated schedule: every timeline
  // quantity is bit-identical, not merely close.
  EXPECT_DOUBLE_EQ(off.latency_us, on.latency_us);
  EXPECT_DOUBLE_EQ(off.cpu_busy_us, on.cpu_busy_us);
  EXPECT_DOUBLE_EQ(off.gpu_busy_us, on.gpu_busy_us);
  EXPECT_EQ(off.sync_count, on.sync_count);
  ASSERT_EQ(off.trace.size(), on.trace.size());
  for (size_t i = 0; i < off.trace.size(); ++i) {
    EXPECT_EQ(off.trace[i].node, on.trace[i].node);
    EXPECT_EQ(off.trace[i].proc, on.trace[i].proc);
    EXPECT_DOUBLE_EQ(off.trace[i].start_us, on.trace[i].start_us);
    EXPECT_DOUBLE_EQ(off.trace[i].end_us, on.trace[i].end_us);
  }
  ASSERT_TRUE(off.output.has_value());
  ASSERT_TRUE(on.output.has_value());
  ASSERT_EQ(off.output->SizeBytes(), on.output->SizeBytes());
  EXPECT_EQ(std::memcmp(off.output->raw(), on.output->raw(),
                        static_cast<size_t>(off.output->SizeBytes())),
            0);
}

TEST(TraceTest, UlayerTraceEnvironmentVariableEnablesRecording) {
  const Model m = MakeLeNet5();
  ExecConfig cfg = ExecConfig::AllF32();
  cfg.trace = false;
  PreparedModel pm(m, cfg);
  Executor ex(pm, MakeExynos7420());
  const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kCpu);

  ASSERT_EQ(::setenv("ULAYER_TRACE", "1", 1), 0);
  const RunResult on = ex.Run(plan);
  EXPECT_TRUE(on.run_trace.enabled) << "ULAYER_TRACE=1 must enable recording";
  EXPECT_FALSE(on.run_trace.spans.empty());

  // Exactly "0" means off; the config flag still wins when set.
  ASSERT_EQ(::setenv("ULAYER_TRACE", "0", 1), 0);
  const RunResult off = ex.Run(plan);
  EXPECT_FALSE(off.run_trace.enabled);
  ::unsetenv("ULAYER_TRACE");
}

// --- Golden Chrome trace JSON ------------------------------------------------

TEST(ChromeTraceTest, GoldenExportRoundTripsAndMatchesTheSchema) {
  const Model m = MakeLeNet5();
  const RunResult r = TracedRun(m, ExecConfig::ProcessorFriendly(), MakeHalfSplitPlan(m.graph));
  const RunTrace& rt = r.run_trace;
  ASSERT_TRUE(rt.enabled);
  ASSERT_FALSE(rt.spans.empty());
  ASSERT_FALSE(rt.queue_depth.empty());

  trace::ChromeExportOptions opts;
  opts.graph = &m.graph;
  opts.model = "lenet5";
  opts.soc = "exynos7420";
  opts.config = "pf";
  const std::string json = ChromeTraceJson(rt, opts);
  EXPECT_EQ(json, ChromeTraceJson(rt, opts)) << "export must be deterministic";

  const JsonValue doc = ParseJson(json);
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  const JsonValue* unit = doc.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");

  const JsonValue* other = doc.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->Find("tool")->string, "ulayer");
  EXPECT_EQ(other->Find("model")->string, "lenet5");
  EXPECT_EQ(other->Find("soc")->string, "exynos7420");
  EXPECT_EQ(other->Find("config")->string, "pf");
  // %.17g printing round-trips bit-exactly, so == is the right comparison.
  EXPECT_EQ(other->Find("latency_us")->number, rt.latency_us);
  EXPECT_EQ(other->Find("cpu_busy_us")->number, rt.cpu_busy_us);
  EXPECT_EQ(other->Find("gpu_busy_us")->number, rt.gpu_busy_us);
  EXPECT_EQ(other->Find("sync_count")->number, static_cast<double>(rt.sync_count));

  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

  size_t meta = 0, durations = 0, counters = 0;
  for (const JsonValue& ev : events->items) {
    ASSERT_EQ(ev.kind, JsonValue::Kind::kObject);
    const std::string& ph = ev.Find("ph")->string;
    EXPECT_EQ(ev.Find("pid")->number, 0.0);
    const int tid = static_cast<int>(ev.Find("tid")->number);
    EXPECT_TRUE(tid == trace::kChromeTidCpu || tid == trace::kChromeTidGpu ||
                tid == trace::kChromeTidGaps);
    if (ph == "M") {
      ++meta;
      continue;
    }
    if (ph == "C") {
      // Queue-depth counter samples: per-device track, never negative.
      EXPECT_NE(tid, trace::kChromeTidGaps);
      const JsonValue* outstanding = ev.Find("args")->Find("outstanding");
      ASSERT_NE(outstanding, nullptr);
      EXPECT_GE(outstanding->number, 0.0);
      ++counters;
      continue;
    }
    ASSERT_EQ(ph, "X");
    // Duration events appear in span order; cross-check against the source.
    ASSERT_LT(durations, rt.spans.size());
    const Span& sp = rt.spans[durations];
    EXPECT_EQ(ev.Find("ts")->number, sp.start_us) << "timestamps round-trip bit-exactly";
    EXPECT_EQ(ev.Find("dur")->number, sp.duration_us());
    EXPECT_EQ(tid, IsOccupying(sp.kind)
                       ? (sp.proc == ProcKind::kCpu ? trace::kChromeTidCpu : trace::kChromeTidGpu)
                       : trace::kChromeTidGaps);
    const JsonValue* args = ev.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->Find("node")->number, static_cast<double>(sp.node));
    EXPECT_EQ(args->Find("kind")->string, std::string(SpanKindName(sp.kind)));
    EXPECT_EQ(args->Find("fault")->string, std::string(FaultTagName(sp.fault)));
    if (sp.kind == SpanKind::kKernel) {
      EXPECT_EQ(args->Find("c_begin") != nullptr, sp.c_end >= 0);
      if (sp.predicted_us > 0.0) {
        ASSERT_NE(args->Find("predicted_us"), nullptr);
        EXPECT_EQ(args->Find("predicted_us")->number, sp.predicted_us);
      }
    }
    ++durations;
  }
  EXPECT_EQ(meta, 4u) << "process name + three thread-name tracks";
  EXPECT_EQ(durations, rt.spans.size());
  EXPECT_EQ(counters, rt.queue_depth.size());
}

// --- Trace invariants across plans, threads and faults ------------------------

TEST(TraceInvariantTest, HoldAcrossModelsPlansThreadsAndFaultSpecs) {
  struct Case {
    Model model;
    ExecConfig cfg;
  };
  Case cases[] = {
      {MakeLeNet5(), ExecConfig::AllF32()},
      {MakeSqueezeNetV11(1, 64), ExecConfig::ProcessorFriendly()},
      {MakeGoogLeNet(), ExecConfig::ProcessorFriendly()},
  };
  const char* specs[] = {
      "",
      "seed=5;gpu.any@prob:0.25=timeout:120",
      "gpu.kernel=slow:2",
      "gpu.kernel@call:2=device-lost",
      "gpu.kernel@limit:1=enqueue-failed;gpu.map@call:3=map-failed",
  };
  for (Case& c : cases) {
    const Plan plans[] = {MakeSingleProcessorPlan(c.model.graph, ProcKind::kCpu),
                          MakeSingleProcessorPlan(c.model.graph, ProcKind::kGpu),
                          MakeHalfSplitPlan(c.model.graph)};
    for (size_t pi = 0; pi < 3; ++pi) {
      for (const int threads : {1, 4}) {
        for (const char* spec : specs) {
          ExecConfig cfg = c.cfg;
          cfg.cpu_threads = threads;
          const RunResult r = TracedRun(c.model, cfg, plans[pi], spec);
          const Report report = VerifyRunTrace(r.run_trace);
          EXPECT_TRUE(report.ok()) << c.model.name << " plan#" << pi << " threads=" << threads
                                   << " spec=\"" << spec << "\"\n"
                                   << report.ToString();
          // Queue depth: cumulative, non-negative, and every enqueue has a
          // completion (both device tracks drain back to zero).
          int last[2] = {0, 0};
          for (const trace::QueueSample& q : r.run_trace.queue_depth) {
            EXPECT_GE(q.depth, 0) << c.model.name << " spec=\"" << spec << "\"";
            last[q.proc == ProcKind::kCpu ? 0 : 1] = q.depth;
          }
          EXPECT_EQ(last[0], 0);
          EXPECT_EQ(last[1], 0);
        }
      }
    }
  }
}

TEST(TraceInvariantTest, DisabledTraceIsATypedVerifierError) {
  RunTrace rt;  // Default: enabled = false.
  const Report report = VerifyRunTrace(rt);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(DiagCode::kTraceNotEnabled));
}

// --- Predictor drift ---------------------------------------------------------

TEST(DriftReportTest, FaultFreeRatiosAreOneToRoundOff) {
  const Model m = MakeGoogLeNet();
  const RunResult r = TracedRun(m, ExecConfig::ProcessorFriendly(), MakeHalfSplitPlan(m.graph));
  const trace::DriftReport rep = BuildDriftReport(r.run_trace);
  ASSERT_FALSE(rep.rows.empty());
  // The simulation runs on the same timing model the predictor uses, so
  // fault-free drift is floating-point round-off, nothing more.
  EXPECT_LE(rep.max_abs_deviation, 1e-9);
  EXPECT_NEAR(rep.cpu_ratio, 1.0, 1e-9);
  EXPECT_NEAR(rep.gpu_ratio, 1.0, 1e-9);
  EXPECT_NEAR(rep.overall_ratio, 1.0, 1e-9);
  // The human-readable table renders one line per kernel span.
  const std::string table = rep.ToString(&m.graph);
  EXPECT_NE(table.find("predictor drift"), std::string::npos);
  EXPECT_NE(table.find("aggregate:"), std::string::npos);
}

TEST(DriftReportTest, SlowdownsSurfaceAsTheThrottleFactor) {
  // VGG16: kernel bodies dwarf the launch overhead, so the duration-weighted
  // aggregate sits near the injected factor rather than being diluted.
  const Model m = MakeVgg16();
  const RunResult r =
      TracedRun(m, ExecConfig::ProcessorFriendly(),
                MakeSingleProcessorPlan(m.graph, ProcKind::kGpu), "gpu.kernel=slow:2");
  ASSERT_GT(r.degradation.slowdowns, 0);
  const trace::DriftReport rep = BuildDriftReport(r.run_trace);
  ASSERT_FALSE(rep.rows.empty());
  for (const trace::DriftRow& row : rep.rows) {
    if (row.proc != ProcKind::kGpu) {
      continue;
    }
    // predicted = launch + body, simulated = launch + 2*body: strictly
    // above 1 and below the raw factor.
    EXPECT_GT(row.ratio, 1.0) << "node " << row.node;
    EXPECT_LT(row.ratio, 2.0 + 1e-9) << "node " << row.node;
  }
  EXPECT_GT(rep.gpu_ratio, 1.5);
  EXPECT_GT(rep.max_abs_deviation, 1e-6);
}

// --- Metrics registry --------------------------------------------------------

TEST(MetricsRegistryTest, AggregatesRunsAndExportsJson) {
  const Model m = MakeLeNet5();
  ExecConfig cfg = ExecConfig::ProcessorFriendly();
  cfg.trace = true;
  PreparedModel pm(m, cfg);
  Executor ex(pm, MakeExynos7420());
  const Plan plan = MakeHalfSplitPlan(m.graph);

  trace::MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  RunResult r;
  for (int i = 0; i < 3; ++i) {
    ex.RunInto(plan, nullptr, r);
    registry.AddRun(r.run_trace);
  }
  EXPECT_EQ(registry.counter("runs"), 3);
  EXPECT_EQ(registry.counter("spans"), 3 * static_cast<int64_t>(r.run_trace.spans.size()));
  const trace::Histogram* latency = registry.histogram("latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 3);
  // Identical runs: min == max == mean == the run's latency.
  EXPECT_DOUBLE_EQ(latency->min, r.latency_us);
  EXPECT_DOUBLE_EQ(latency->max, r.latency_us);
  EXPECT_DOUBLE_EQ(latency->mean(), r.latency_us);

  registry.Count("custom_counter", 5);
  registry.Observe("custom_value", 2.5);
  EXPECT_EQ(registry.counter("custom_counter"), 5);
  ASSERT_NE(registry.histogram("custom_value"), nullptr);
  EXPECT_DOUBLE_EQ(registry.histogram("custom_value")->sum, 2.5);
  EXPECT_EQ(registry.counter("no_such_counter"), 0);
  EXPECT_EQ(registry.histogram("no_such_histogram"), nullptr);

  // The JSON export parses and carries both sections.
  const JsonValue doc = ParseJson(registry.ToJson());
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("runs")->number, 3.0);
  const JsonValue* histograms = doc.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* lat = histograms->Find("latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Find("count")->number, 3.0);
  // The table form mentions every counter by name.
  EXPECT_NE(registry.ToString().find("custom_counter"), std::string::npos);
}

// Histogram::Quantile estimates from fixed geometric buckets (growth 1.25):
// any estimate is within one bucket ratio of the true quantile, i.e. a 25%
// relative error bound, regardless of observation order.
TEST(HistogramQuantileTest, UniformSequenceWithinBucketResolution) {
  trace::Histogram h;
  for (int v = 1; v <= 1000; ++v) {
    h.Observe(static_cast<double>(v));
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
  const double p50 = h.Quantile(0.5);
  const double p99 = h.Quantile(0.99);
  EXPECT_GT(p50, 500.0 / 1.25);
  EXPECT_LT(p50, 500.0 * 1.25);
  EXPECT_GT(p99, 990.0 / 1.25);
  EXPECT_LT(p99, 990.0 * 1.25);
  EXPECT_LE(p50, p99);  // Quantiles are monotone in p.
  // Estimates never escape the observed range.
  EXPECT_GE(h.Quantile(0.001), 1.0);
  EXPECT_LE(h.Quantile(0.999), 1000.0);
}

TEST(HistogramQuantileTest, DegenerateCases) {
  trace::Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  trace::Histogram one;
  one.Observe(42.0);
  EXPECT_DOUBLE_EQ(one.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(one.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(one.Quantile(1.0), 42.0);

  trace::Histogram same;  // min == max: exact at every p.
  for (int i = 0; i < 10; ++i) {
    same.Observe(7.5);
  }
  EXPECT_DOUBLE_EQ(same.Quantile(0.99), 7.5);

  // Values at/below the first bound and beyond the last (overflow bucket)
  // still clamp into [min, max].
  trace::Histogram wide;
  wide.Observe(0.25);
  wide.Observe(1e12);
  EXPECT_GE(wide.Quantile(0.01), 0.25);
  EXPECT_LE(wide.Quantile(0.99), 1e12);
}

TEST(HistogramQuantileTest, BimodalSeparatesModes) {
  trace::Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.Observe(10.0);
  }
  for (int i = 0; i < 10; ++i) {
    h.Observe(10000.0);
  }
  EXPECT_LT(h.Quantile(0.5), 15.0);
  EXPECT_GT(h.Quantile(0.95), 1000.0);
}

TEST(HistogramQuantileTest, JsonAndTableExportCarryQuantiles) {
  trace::MetricsRegistry registry;
  for (int v = 1; v <= 100; ++v) {
    registry.Observe("latency_us", static_cast<double>(v));
  }
  const JsonValue doc = ParseJson(registry.ToJson());
  const JsonValue* lat = doc.Find("histograms")->Find("latency_us");
  ASSERT_NE(lat, nullptr);
  ASSERT_NE(lat->Find("p50"), nullptr);
  ASSERT_NE(lat->Find("p99"), nullptr);
  EXPECT_GT(lat->Find("p50")->number, 50.0 / 1.25);
  EXPECT_LT(lat->Find("p50")->number, 50.0 * 1.25);
  EXPECT_NE(registry.ToString().find("p99"), std::string::npos);
}

}  // namespace
}  // namespace ulayer
