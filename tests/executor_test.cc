#include "core/executor.h"

#include <cstring>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/reference.h"
#include "core/runtime.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

std::vector<Tensor> MakeInputs(const Shape& shape, int count, uint64_t seed) {
  std::vector<Tensor> v;
  for (int i = 0; i < count; ++i) {
    Tensor t(shape, DType::kF32);
    FillUniform(t, seed + static_cast<uint64_t>(i), -1.0f, 1.0f);
    v.push_back(std::move(t));
  }
  return v;
}

TEST(ExecutorTest, SimulateOnlyLatencyIsPositiveAndDeterministic) {
  const Model m = MakeGoogLeNet();
  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  Executor ex(pm, MakeExynos7420());
  const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kCpu);
  const RunResult a = ex.Run(plan);
  const RunResult b = ex.Run(plan);
  EXPECT_GT(a.latency_us, 0.0);
  EXPECT_DOUBLE_EQ(a.latency_us, b.latency_us);
  EXPECT_DOUBLE_EQ(a.total_energy_mj, b.total_energy_mj);
}

TEST(ExecutorTest, SingleProcessorPlansUseOneDevice) {
  const Model m = MakeAlexNet();
  PreparedModel pm(m, ExecConfig::AllF32());
  Executor ex(pm, MakeExynos7420());
  const RunResult cpu = ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kCpu));
  EXPECT_GT(cpu.cpu_busy_us, 0.0);
  EXPECT_DOUBLE_EQ(cpu.gpu_busy_us, 0.0);
  const RunResult gpu = ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kGpu));
  EXPECT_GT(gpu.gpu_busy_us, 0.0);
  EXPECT_DOUBLE_EQ(gpu.cpu_busy_us, 0.0);
  EXPECT_EQ(cpu.sync_count, 0);
}

TEST(ExecutorTest, CooperativePlanBeatsSingleProcessorOnBigLayers) {
  const Model m = MakeVgg16();
  const SocSpec soc = MakeExynos7420();
  const ExecConfig cfg = ExecConfig::ProcessorFriendly();
  PreparedModel pm(m, cfg);
  Executor ex(pm, soc);
  const double cpu = ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kCpu)).latency_us;
  const double gpu = ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kGpu)).latency_us;

  const TimingModel tm(soc);
  const LatencyPredictor pred(tm, cfg, {&m.graph});
  Partitioner::Options opts;
  opts.branch_distribution = false;
  const Plan coop = Partitioner(m.graph, tm, cfg, pred, opts).Build();
  const double coop_us = ex.Run(coop).latency_us;
  EXPECT_LT(coop_us, std::min(cpu, gpu))
      << "cooperative single-layer acceleration must beat both single processors";
}

TEST(ExecutorTest, CooperativeRunsUseBothDevicesAndSync) {
  const Model m = MakeVgg16();
  const SocSpec soc = MakeExynos7420();
  ULayerRuntime rt(m, soc);
  const RunResult r = rt.Run();
  EXPECT_GT(r.cpu_busy_us, 0.0);
  EXPECT_GT(r.gpu_busy_us, 0.0);
  EXPECT_GT(r.sync_count, 0);
}

TEST(ExecutorTest, AsyncIssueBeatsSynchronousIssue) {
  const Model m = MakeGoogLeNet();
  const SocSpec soc = MakeExynos7420();
  ULayerRuntime::Options async_opts;
  ULayerRuntime::Options sync_opts;
  sync_opts.config.async_issue = false;
  ULayerRuntime rt_async(m, soc, async_opts);
  ULayerRuntime rt_sync(m, soc, sync_opts);
  EXPECT_LT(rt_async.Run().latency_us, rt_sync.Run().latency_us);
}

TEST(ExecutorTest, ZeroCopyBeatsCopyMode) {
  const Model m = MakeVgg16();
  const SocSpec soc = MakeExynos7420();
  ULayerRuntime::Options zc;
  ULayerRuntime::Options copy;
  copy.config.zero_copy = false;
  ULayerRuntime rt_zc(m, soc, zc);
  ULayerRuntime rt_copy(m, soc, copy);
  EXPECT_LT(rt_zc.Run().latency_us, rt_copy.Run().latency_us);
}

TEST(ExecutorTest, FunctionalF32MatchesReference) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  PreparedModel pm(m, ExecConfig::AllF32());
  Executor ex(pm, MakeExynos7420());
  Tensor in(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(in, 3, 0.0f, 1.0f);
  const RunResult r = ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kCpu), &in);
  ASSERT_TRUE(r.output.has_value());
  const auto ref = ForwardF32(m, in);
  EXPECT_LT(MaxAbsDiff(*r.output, ref.back()), 1e-5f);
}

TEST(ExecutorTest, CooperativeF32OutputsAreBitIdenticalToSingle) {
  // Channel-wise distribution must not change results: disjoint slices of
  // the same kernels.
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const SocSpec soc = MakeExynos7420();
  PreparedModel pm(m, ExecConfig::AllF32());
  Executor ex(pm, soc);
  Tensor in(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(in, 4, 0.0f, 1.0f);
  const RunResult single = ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kCpu), &in);

  Plan coop = MakeSingleProcessorPlan(m.graph, ProcKind::kCpu);
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kConv || n.desc.kind == LayerKind::kPool) {
      coop.nodes[static_cast<size_t>(n.id)] =
          NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.5};
    }
  }
  const RunResult split = ex.Run(coop, &in);
  EXPECT_EQ(MaxAbsDiff(*single.output, *split.output), 0.0f);
}

TEST(ExecutorTest, FunctionalQU8TracksF32Reference) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  const auto calib = MakeInputs(Shape(1, 1, 28, 28), 4, 50);
  pm.Calibrate(calib);
  Executor ex(pm, MakeExynos7420());
  Tensor in(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(in, 99, -1.0f, 1.0f);
  const RunResult r = ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kCpu), &in);
  const auto ref = ForwardF32(m, in);
  // Quantized probabilities track the F32 reference loosely but the argmax
  // class should usually agree on a small network.
  ASSERT_TRUE(r.output.has_value());
  EXPECT_EQ(r.output->shape(), ref.back().shape());
  EXPECT_LT(RmsDiff(*r.output, ref.back()), 0.1f);
}

TEST(ExecutorTest, CooperativeQU8MergesCpuAndGpuSlices) {
  // Functional cooperative run with processor-friendly quantization: the
  // CPU computes integer slices, the GPU F16 slices; the merged output must
  // stay close to the all-CPU quantized output.
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  pm.Calibrate(MakeInputs(Shape(1, 1, 28, 28), 4, 60));
  Executor ex(pm, MakeExynos7420());
  Tensor in(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(in, 61, -1.0f, 1.0f);

  const RunResult cpu_only = ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kCpu), &in);
  Plan coop = MakeSingleProcessorPlan(m.graph, ProcKind::kCpu);
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kConv || n.desc.kind == LayerKind::kFullyConnected) {
      coop.nodes[static_cast<size_t>(n.id)] =
          NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.5};
    }
  }
  const RunResult mixed = ex.Run(coop, &in);
  EXPECT_LT(RmsDiff(*cpu_only.output, *mixed.output), 0.05f);
}

TEST(ExecutorTest, EnergyBreakdownSumsToTotal) {
  const Model m = MakeAlexNet();
  ULayerRuntime rt(m, MakeExynos7880());
  const RunResult r = rt.Run();
  EXPECT_NEAR(r.total_energy_mj, r.cpu_energy_mj + r.gpu_energy_mj + r.idle_energy_mj, 1e-9);
  EXPECT_GT(r.total_energy_mj, 0.0);
}

TEST(ExecutorTest, BranchPlanOverlapsBranchesAcrossDevices) {
  // A hand-built two-branch graph where each branch takes T: running them on
  // different devices must take ~T (plus overheads), not 2T.
  Graph g;
  const int in = g.AddInput(Shape(1, 64, 28, 28));
  const int a = g.AddConv("a", in, 128, 3, 1, 1, true);
  const int b = g.AddConv("b", in, 128, 3, 1, 1, true);
  g.AddConcat("cat", {a, b});
  Model m;
  m.name = "two-branch";
  m.graph = g;

  PreparedModel pm(m, ExecConfig::AllF32());
  Executor ex(pm, MakeExynos7420());

  Plan serial = MakeSingleProcessorPlan(g, ProcKind::kCpu);
  const double serial_us = ex.Run(serial).latency_us;

  Plan branched = serial;
  branched.nodes[static_cast<size_t>(b)] =
      NodeAssignment{StepKind::kBranch, ProcKind::kGpu, 1.0};
  branched.nodes[static_cast<size_t>(a)] =
      NodeAssignment{StepKind::kBranch, ProcKind::kCpu, 1.0};
  const double branched_us = ex.Run(branched).latency_us;
  EXPECT_LT(branched_us, serial_us);
}


TEST(ExecutorTest, CrossProcessorDependenciesPaySyncs) {
  // Two convs forced onto alternating processors must sync at each handoff.
  Graph g;
  const int in = g.AddInput(Shape(1, 8, 16, 16));
  const int a = g.AddConv("a", in, 8, 3, 1, 1, true);
  const int b = g.AddConv("b", a, 8, 3, 1, 1, true);
  const int c = g.AddConv("c", b, 8, 3, 1, 1, true);
  (void)c;
  Model m;
  m.name = "alternating";
  m.graph = g;
  PreparedModel pm(m, ExecConfig::AllF32());
  Executor ex(pm, MakeExynos7420());

  Plan plan = MakeSingleProcessorPlan(g, ProcKind::kCpu);
  plan.nodes[static_cast<size_t>(b)] = NodeAssignment{StepKind::kSingle, ProcKind::kGpu, 1.0};
  const RunResult r = ex.Run(plan);
  // CPU->GPU before b, GPU->CPU before c.
  EXPECT_EQ(r.sync_count, 2);
  const RunResult all_cpu = ex.Run(MakeSingleProcessorPlan(g, ProcKind::kCpu));
  EXPECT_EQ(all_cpu.sync_count, 0);
}

TEST(ExecutorTest, ResidualNetworkRunsFunctionally) {
  // ResNet-18 at tiny resolution through the full quantized cooperative
  // pipeline (exercises eltwise-add joins, identity branches, standalone
  // relu fusion in the executor).
  Model m = MakeResNet18(1, 32);
  m.MaterializeWeights();
  const SocSpec soc = MakeExynos7420();
  ULayerRuntime rt(m, soc);
  std::vector<Tensor> calib;
  for (int i = 0; i < 2; ++i) {
    Tensor t(Shape(1, 3, 32, 32), DType::kF32);
    FillUniform(t, 800 + static_cast<uint64_t>(i), -1.0f, 1.0f);
    calib.push_back(std::move(t));
  }
  rt.Calibrate(calib);
  Tensor in(Shape(1, 3, 32, 32), DType::kF32);
  FillUniform(in, 900, -1.0f, 1.0f);
  const RunResult r = rt.Run(&in);
  ASSERT_TRUE(r.output.has_value());
  float sum = 0.0f;
  for (int64_t i = 0; i < r.output->NumElements(); ++i) {
    sum += r.output->Data<float>()[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
  // Identity-shortcut groups have an empty branch (nothing to overlap), so
  // the partitioner rightly prefers channel-splitting the main path over
  // branch distribution there; the plan must still cover every node.
  EXPECT_EQ(rt.plan().nodes.size(), static_cast<size_t>(m.graph.size()));
}

TEST(ExecutorTest, TraceCoversEveryNonInputNode) {
  const Model m = MakeVgg16();
  ULayerRuntime rt(m, MakeExynos7420());
  const RunResult r = rt.Run();
  std::vector<bool> seen(static_cast<size_t>(m.graph.size()), false);
  for (const KernelTrace& kt : r.trace) {
    seen[static_cast<size_t>(kt.node)] = true;
  }
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind != LayerKind::kInput) {
      EXPECT_TRUE(seen[static_cast<size_t>(n.id)]) << n.desc.name;
    }
  }
}

TEST(ExecutorTest, LatencyNeverBelowCriticalPathOfBusiestDevice) {
  for (const Model& m : MakeEvaluationModels()) {
    ULayerRuntime rt(m, MakeExynos7880());
    const RunResult r = rt.Run();
    EXPECT_GE(r.latency_us + 1e-6, std::max(r.cpu_busy_us, r.gpu_busy_us)) << m.name;
  }
}

// Exception safety (DESIGN.md Section 10): a Run that throws mid-graph must
// leave the executor reusable — the next clean Run is byte-identical to a
// run on a freshly constructed executor.
TEST(ExecutorTest, ThrowMidRunLeavesExecutorReusable) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  Tensor input(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(input, 321, -1.0f, 1.0f);

  // Recovery is disabled, so the injected GPU fault escapes as an error.
  ExecConfig cfg = ExecConfig::AllF32();
  cfg.fault_cpu_fallback = false;
  cfg.fault_max_retries = 0;
  PreparedModel pm(m, cfg);
  const SocSpec soc = MakeExynos7420();
  const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kGpu);

  Executor ex(pm, soc);
  ex.SetFaultPlan(fault::FaultPlan::Parse("gpu.kernel@call:2=enqueue-failed"));
  EXPECT_THROW(ex.Run(plan, &input), Error);

  // Clear the plan; the next run must match a fresh executor bit for bit.
  ex.SetFaultPlan(fault::FaultPlan{});
  const RunResult recovered = ex.Run(plan, &input);
  Executor fresh(pm, soc);
  const RunResult want = fresh.Run(plan, &input);
  EXPECT_DOUBLE_EQ(recovered.latency_us, want.latency_us);
  EXPECT_DOUBLE_EQ(recovered.total_energy_mj, want.total_energy_mj);
  EXPECT_EQ(recovered.sync_count, want.sync_count);
  ASSERT_EQ(recovered.trace.size(), want.trace.size());
  for (size_t i = 0; i < want.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(recovered.trace[i].start_us, want.trace[i].start_us);
    EXPECT_DOUBLE_EQ(recovered.trace[i].end_us, want.trace[i].end_us);
  }
  ASSERT_TRUE(recovered.output.has_value());
  ASSERT_TRUE(want.output.has_value());
  ASSERT_EQ(recovered.output->SizeBytes(), want.output->SizeBytes());
  EXPECT_EQ(std::memcmp(recovered.output->raw(), want.output->raw(),
                        static_cast<size_t>(want.output->SizeBytes())),
            0);
  EXPECT_FALSE(recovered.degradation.degraded());
}

// Keeping the armed fault plan across the throw also works: the injector is
// rewound at the top of every Run, so each attempt fails identically rather
// than leaking fired-rule state between runs.
TEST(ExecutorTest, FaultStreamRewindsAcrossThrowingRuns) {
  const Model m = MakeAlexNet();
  ExecConfig cfg = ExecConfig::ProcessorFriendly();
  cfg.fault_cpu_fallback = false;
  cfg.fault_max_retries = 0;
  PreparedModel pm(m, cfg);
  Executor ex(pm, MakeExynos7420());
  ex.SetFaultPlan(fault::FaultPlan::Parse("gpu.kernel@call:3=device-lost"));
  const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kGpu);
  std::string first_what;
  for (int i = 0; i < 3; ++i) {
    try {
      ex.Run(plan);
      FAIL() << "expected the armed fault to escape";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kFault);
      if (i == 0) {
        first_what = e.what();
      } else {
        EXPECT_EQ(std::string(e.what()), first_what) << "identical failure every run";
      }
    }
  }
}

}  // namespace
}  // namespace ulayer
