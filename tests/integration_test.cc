// End-to-end integration tests: full runtime over the evaluation models,
// functional quantized inference on a small network, and the paper's
// headline relationships across both SoCs.
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/reference.h"
#include "core/runtime.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

std::vector<Tensor> MakeInputs(const Shape& shape, int count, uint64_t seed) {
  std::vector<Tensor> v;
  for (int i = 0; i < count; ++i) {
    Tensor t(shape, DType::kF32);
    FillUniform(t, seed + static_cast<uint64_t>(i), -1.0f, 1.0f);
    v.push_back(std::move(t));
  }
  return v;
}

class EvaluationModels : public ::testing::TestWithParam<int> {
 protected:
  Model model() const {
    switch (GetParam()) {
      case 0:
        return MakeGoogLeNet();
      case 1:
        return MakeSqueezeNetV11();
      case 2:
        return MakeVgg16();
      case 3:
        return MakeAlexNet();
      default:
        return MakeMobileNetV1();
    }
  }
};

TEST_P(EvaluationModels, ULayerImprovesLatencyOnBothSoCs) {
  const Model m = model();
  for (const bool high_end : {true, false}) {
    const SocSpec soc = high_end ? MakeExynos7420() : MakeExynos7880();
    const double l2p = RunLayerToProcessor(m, soc, ExecConfig::AllQU8()).latency_us;
    ULayerRuntime rt(m, soc);
    const RunResult r = rt.Run();
    const double improvement = (l2p - r.latency_us) / l2p;
    EXPECT_GT(improvement, 0.0) << m.name << " " << soc.name;
    // The paper reports improvements up to 59.9% / 69.6% (speed increase);
    // sanity-bound ours to a physical range.
    EXPECT_LT(improvement, 0.75) << m.name << " " << soc.name;
  }
}

TEST_P(EvaluationModels, OptimizationsStack) {
  // Figure 17: Ch.Dist alone < +Proc.Quant < +Br.Dist (for branchy NNs).
  const Model m = model();
  const SocSpec soc = MakeExynos7420();

  ULayerRuntime::Options ch;
  ch.config = ExecConfig::AllQU8();
  ch.partitioner.branch_distribution = false;

  ULayerRuntime::Options pq;
  pq.config = ExecConfig::ProcessorFriendly();
  pq.partitioner.branch_distribution = false;

  ULayerRuntime::Options full;  // Proc-friendly + branch distribution.

  const double t_ch = ULayerRuntime(m, soc, ch).Run().latency_us;
  const double t_pq = ULayerRuntime(m, soc, pq).Run().latency_us;
  const double t_full = ULayerRuntime(m, soc, full).Run().latency_us;
  EXPECT_LE(t_pq, t_ch * 1.001) << m.name;
  EXPECT_LE(t_full, t_pq * 1.001) << m.name;
}

TEST_P(EvaluationModels, EnergyEfficiencyIsReasonable) {
  const Model m = model();
  for (const bool high_end : {true, false}) {
    const SocSpec soc = high_end ? MakeExynos7420() : MakeExynos7880();
    const RunResult l2p = RunLayerToProcessor(m, soc, ExecConfig::AllQU8());
    ULayerRuntime rt(m, soc);
    const RunResult ul = rt.Run();
    // ulayer raises power (both processors active) but must not blow up
    // energy; the paper reports it *improves* energy vs layer-to-processor.
    EXPECT_LT(ul.total_energy_mj, l2p.total_energy_mj * 1.15) << m.name << " " << soc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFive, EvaluationModels, ::testing::Range(0, 5));

TEST(IntegrationTest, FunctionalULayerLeNetAgreesWithF32) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const SocSpec soc = MakeExynos7420();
  ULayerRuntime rt(m, soc);
  rt.Calibrate(MakeInputs(Shape(1, 1, 28, 28), 6, 1000));

  int agree = 0;
  const int trials = 10;
  for (int i = 0; i < trials; ++i) {
    Tensor in(Shape(1, 1, 28, 28), DType::kF32);
    FillUniform(in, 2000 + static_cast<uint64_t>(i), -1.0f, 1.0f);
    const RunResult r = rt.Run(&in);
    ASSERT_TRUE(r.output.has_value());
    const auto ref = ForwardF32(m, in);
    agree += Argmax(*r.output) == Argmax(ref.back()) ? 1 : 0;
  }
  EXPECT_GE(agree, 8) << "quantized cooperative inference should usually agree with F32";
}

TEST(IntegrationTest, FunctionalSqueezeNetSmallImageRuns) {
  // A branchy model end-to-end with branch distribution + quantization.
  Model m = MakeSqueezeNetV11(1, 64);
  m.MaterializeWeights();
  const SocSpec soc = MakeExynos7880();
  ULayerRuntime rt(m, soc);
  rt.Calibrate(MakeInputs(Shape(1, 3, 64, 64), 2, 3000));
  Tensor in(Shape(1, 3, 64, 64), DType::kF32);
  FillUniform(in, 4000, -1.0f, 1.0f);
  const RunResult r = rt.Run(&in);
  ASSERT_TRUE(r.output.has_value());
  EXPECT_EQ(r.output->shape(), Shape(1, 1000, 1, 1));
  float sum = 0.0f;
  for (int64_t i = 0; i < 1000; ++i) {
    sum += r.output->Data<float>()[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(IntegrationTest, MidRangeGainsExceedHighEndOnBranchyNN) {
  // The paper's peak improvement is on the mid-range SoC (69.6% vs 59.9%).
  const Model m = MakeGoogLeNet();
  double improvement[2];
  int i = 0;
  for (const bool high_end : {true, false}) {
    const SocSpec soc = high_end ? MakeExynos7420() : MakeExynos7880();
    const double l2p = RunLayerToProcessor(m, soc, ExecConfig::AllQU8()).latency_us;
    const double ul = ULayerRuntime(m, soc).Run().latency_us;
    improvement[i++] = l2p / ul;
  }
  EXPECT_GT(improvement[0], 1.0);
  EXPECT_GT(improvement[1], 1.0);
}

}  // namespace
}  // namespace ulayer
