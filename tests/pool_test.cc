#include "kernels/pool.h"

#include <cstring>

#include <gtest/gtest.h>

#include "quant/quantize.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

TEST(PoolParamsTest, OutputSizes) {
  Pool2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 2;
  EXPECT_EQ(p.OutH(13), 6);  // floor((13-3)/2)+1
  p.ceil_mode = true;
  EXPECT_EQ(p.OutH(13), 6);  // exact here
  EXPECT_EQ(p.OutH(14), 7);  // ceil((14-3)/2)+1 = 7 vs floor = 6
  p.ceil_mode = false;
  EXPECT_EQ(p.OutH(14), 6);
}

TEST(MaxPoolF32Test, PicksWindowMaxima) {
  Tensor in(Shape(1, 1, 4, 4), DType::kF32);
  for (int i = 0; i < 16; ++i) {
    in.Data<float>()[i] = static_cast<float>(i);
  }
  Pool2DParams p;  // 2x2 stride 2 max.
  Tensor out(Shape(1, 1, 2, 2), DType::kF32);
  Pool2DF32(in, p, out);
  EXPECT_FLOAT_EQ(out.Data<float>()[0], 5.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[1], 7.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[2], 13.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[3], 15.0f);
}

TEST(AvgPoolF32Test, AveragesInBoundsOnly) {
  // 3x3 avg with pad 1: corner windows see only 4 in-bounds elements.
  Tensor in(Shape(1, 1, 3, 3), DType::kF32);
  for (int i = 0; i < 9; ++i) {
    in.Data<float>()[i] = 1.0f;
  }
  Pool2DParams p;
  p.kind = PoolKind::kAvg;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 1;
  p.pad_h = p.pad_w = 1;
  Tensor out(Shape(1, 1, 3, 3), DType::kF32);
  Pool2DF32(in, p, out);
  // All-ones input: in-bounds average is exactly 1 regardless of count.
  for (int i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(out.Data<float>()[i], 1.0f);
  }
}

TEST(PoolTest, ChannelSlicesComposeExactly) {
  Tensor in(Shape(1, 6, 8, 8), DType::kF32);
  FillUniform(in, 31);
  Pool2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 2;
  Tensor full(Shape(1, 6, 3, 3), DType::kF32);
  Pool2DF32(in, p, full);
  Tensor split_out(Shape(1, 6, 3, 3), DType::kF32);
  Pool2DF32(in, p, split_out, 0, 2);
  Pool2DF32(in, p, split_out, 2, 6);
  EXPECT_EQ(MaxAbsDiff(full, split_out), 0.0f);
}

TEST(PoolQU8Test, MaxPoolOperatesOnCodesDirectly) {
  // Max pooling commutes with the (monotonic) affine map: pooling the codes
  // then dequantizing equals dequantizing then pooling.
  Tensor in(Shape(1, 2, 4, 4), DType::kF32);
  FillUniform(in, 32, -1.0f, 1.0f);
  const Tensor in_q = QuantizeTensor(in, ChooseQuantParams(-1.0f, 1.0f));
  Pool2DParams p;
  Tensor out_q(Shape(1, 2, 2, 2), DType::kQUInt8);
  Pool2DQU8(in_q, p, out_q);
  EXPECT_FLOAT_EQ(out_q.scale(), in_q.scale());

  const Tensor in_dq = DequantizeTensor(in_q);
  Tensor ref(Shape(1, 2, 2, 2), DType::kF32);
  Pool2DF32(in_dq, p, ref);
  const Tensor out = DequantizeTensor(out_q);
  EXPECT_EQ(MaxAbsDiff(out, ref), 0.0f);
}

TEST(PoolQU8Test, AvgPoolRoundsInIntegerDomain) {
  Tensor in_q(Shape(1, 1, 2, 2), DType::kQUInt8);
  in_q.set_quant_params(1.0f, 0);
  in_q.Data<uint8_t>()[0] = 1;
  in_q.Data<uint8_t>()[1] = 2;
  in_q.Data<uint8_t>()[2] = 2;
  in_q.Data<uint8_t>()[3] = 2;
  Pool2DParams p;
  p.kind = PoolKind::kAvg;
  Tensor out(Shape(1, 1, 1, 1), DType::kQUInt8);
  Pool2DQU8(in_q, p, out);
  // (1+2+2+2)/4 = 1.75 -> rounds to 2.
  EXPECT_EQ(out.Data<uint8_t>()[0], 2);
}

TEST(GlobalAvgPoolTest, AllDtypesAgree) {
  Tensor in(Shape(1, 3, 7, 7), DType::kF32);
  FillUniform(in, 33, 0.0f, 1.0f);
  Tensor out_f32(Shape(1, 3, 1, 1), DType::kF32);
  GlobalAvgPoolF32(in, out_f32);

  Tensor out_f16(Shape(1, 3, 1, 1), DType::kF16);
  GlobalAvgPoolF16(ToF16Tensor(in), out_f16);
  const Tensor f16_as_f32 = F16ToF32Tensor(out_f16);

  const Tensor in_q = QuantizeTensor(in, ChooseQuantParams(0.0f, 1.0f));
  Tensor out_q(Shape(1, 3, 1, 1), DType::kQUInt8);
  GlobalAvgPoolQU8(in_q, out_q);
  const Tensor q_as_f32 = DequantizeTensor(out_q);

  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(f16_as_f32.Data<float>()[i], out_f32.Data<float>()[i], 0.05f);
    EXPECT_NEAR(q_as_f32.Data<float>()[i], out_f32.Data<float>()[i], 0.01f);
  }
}

TEST(GlobalAvgPoolTest, ChannelSlicesCompose) {
  Tensor in(Shape(1, 5, 6, 6), DType::kF32);
  FillUniform(in, 34);
  Tensor full(Shape(1, 5, 1, 1), DType::kF32);
  GlobalAvgPoolF32(in, full);
  Tensor split_out(Shape(1, 5, 1, 1), DType::kF32);
  GlobalAvgPoolF32(in, split_out, 0, 3);
  GlobalAvgPoolF32(in, split_out, 3, 5);
  EXPECT_EQ(MaxAbsDiff(full, split_out), 0.0f);
}

TEST(PoolTest, FullyPaddedCeilModeWindowStaysInBounds) {
  // 3x3 input, 2x2 window, stride 2, pad 1, ceil mode: OutDim = 3, and the
  // last output row/column's window starts at 2*2-1 = 3 >= 3, i.e. entirely
  // in the bottom/right padding. The kernel used to read past the input
  // (asan-checked); it must clamp to the nearest in-bounds element.
  Tensor in(Shape(1, 1, 3, 3), DType::kF32);
  for (int i = 0; i < 9; ++i) {
    in.Data<float>()[i] = static_cast<float>(i);
  }
  Pool2DParams p;  // 2x2 stride 2 max.
  p.pad_h = p.pad_w = 1;
  p.ceil_mode = true;
  ASSERT_EQ(p.OutH(3), 3);
  Tensor out(Shape(1, 1, 3, 3), DType::kF32);
  Pool2DF32(in, p, out);
  EXPECT_FLOAT_EQ(out.Data<float>()[0 * 3 + 0], 0.0f);  // Window sees only (0,0).
  EXPECT_FLOAT_EQ(out.Data<float>()[1 * 3 + 1], 8.0f);  // Rows/cols 1-2.
  // Fully-padded windows clamp to the last in-bounds row/column.
  EXPECT_FLOAT_EQ(out.Data<float>()[2 * 3 + 0], 6.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[0 * 3 + 2], 2.0f);
  EXPECT_FLOAT_EQ(out.Data<float>()[2 * 3 + 2], 8.0f);
}

TEST(PoolTest, AvgPoolFullyPaddedWindowHasNonZeroCount) {
  // A 1x1 window with pad 2 puts the border output windows entirely in the
  // padding: the in-bounds count used to go non-positive (divide-by-zero /
  // negative). With the clamp every window sees exactly one element.
  Tensor in(Shape(1, 2, 2, 2), DType::kF32);
  for (int i = 0; i < 8; ++i) {
    in.Data<float>()[i] = 1.0f;
  }
  Pool2DParams p;
  p.kind = PoolKind::kAvg;
  p.kernel_h = p.kernel_w = 1;
  p.stride_h = p.stride_w = 1;
  p.pad_h = p.pad_w = 2;
  ASSERT_EQ(p.OutH(2), 6);
  Tensor out(Shape(1, 2, 6, 6), DType::kF32);
  Pool2DF32(in, p, out);
  for (int64_t i = 0; i < out.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(out.Data<float>()[i], 1.0f) << "i=" << i;
  }
}

TEST(PoolTest, CeilModeCoversTrailingWindow) {
  // 7 -> ceil((7-3)/2)+1 = 3 outputs; the last window starts at 4 and is
  // clipped to in-bounds elements.
  Tensor in(Shape(1, 1, 7, 7), DType::kF32);
  FillUniform(in, 35);
  Pool2DParams p;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 2;
  p.ceil_mode = true;
  EXPECT_EQ(p.OutH(7), 3);
  Tensor out(Shape(1, 1, 3, 3), DType::kF32);
  Pool2DF32(in, p, out);  // Must not read out of bounds (asan-checked).
}

}  // namespace
}  // namespace ulayer
