#include "core/dp_partitioner.h"

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/runtime.h"

namespace ulayer {
namespace {

struct PlannerFixture {
  Model model;
  SocSpec soc;
  TimingModel timing;
  ExecConfig config;
  LatencyPredictor predictor;

  PlannerFixture(Model m, SocSpec s, ExecConfig c)
      : model(std::move(m)),
        soc(std::move(s)),
        timing(soc),
        config(c),
        predictor(timing, config, {&model.graph}) {}

  double Measure(const Plan& plan) {
    PreparedModel pm(model, config);
    Executor ex(pm, soc);
    return ex.Run(plan).latency_us;
  }
};

TEST(DpPartitionerTest, NeverWorseThanGreedyAcrossZoo) {
  for (const bool high_end : {true, false}) {
    for (Model& m : MakeEvaluationModels()) {
      PlannerFixture s(std::move(m), high_end ? MakeExynos7420() : MakeExynos7880(),
              ExecConfig::ProcessorFriendly());
      const Plan greedy =
          Partitioner(s.model.graph, s.timing, s.config, s.predictor).Build();
      const Plan dp =
          DpPartitioner(s.model.graph, s.timing, s.config, s.predictor).Build();
      const double t_greedy = s.Measure(greedy);
      const double t_dp = s.Measure(dp);
      // The DP optimizes the *predicted* chain cost, not the executor's
      // exact overlap model, so small regressions from estimator error are
      // possible; it must never lose materially.
      EXPECT_LT(t_dp, t_greedy * 1.05) << s.model.name << " " << s.soc.name;
    }
  }
}

TEST(DpPartitionerTest, AvoidsProcessorThrashOnAlternatingChain) {
  // A chain whose layers alternate in per-layer best processor by a hair,
  // while syncs are expensive: the greedy layer-to-processor plan bounces
  // between devices; the DP should settle on one device (or pay strictly
  // fewer syncs).
  Graph g;
  int x = g.AddInput(Shape(1, 32, 32, 32));
  for (int i = 0; i < 10; ++i) {
    // Even layers: compute-light (GPU launch dominates -> CPU wins by a bit).
    // Odd layers: compute-heavy 3x3 (GPU wins by a bit on the high-end SoC).
    if (i % 2 == 0) {
      x = g.AddConv("small" + std::to_string(i), x, 32, 1, 1, 0, true);
    } else {
      x = g.AddConv("big" + std::to_string(i), x, 48, 3, 1, 1, true);
    }
  }
  Model m;
  m.name = "alternating";
  m.graph = g;

  SocSpec soc = MakeExynos7420();
  soc.sync_us = 500.0;  // Make switching very expensive.
  PlannerFixture s(std::move(m), soc, ExecConfig::AllF32());

  Partitioner::Options l2p;
  l2p.channel_distribution = false;
  l2p.branch_distribution = false;
  DpPartitioner::Options dp_l2p;
  dp_l2p.channel_distribution = false;
  dp_l2p.branch_distribution = false;

  const Plan greedy = Partitioner(s.model.graph, s.timing, s.config, s.predictor, l2p).Build();
  const Plan dp = DpPartitioner(s.model.graph, s.timing, s.config, s.predictor, dp_l2p).Build();

  PreparedModel pm(s.model, s.config);
  Executor ex(pm, s.soc);
  const RunResult rg = ex.Run(greedy);
  const RunResult rd = ex.Run(dp);
  EXPECT_LE(rd.sync_count, rg.sync_count);
  EXPECT_LE(rd.latency_us, rg.latency_us);
}

TEST(DpPartitionerTest, ChainDpIsExactOnTwoLayerExample) {
  // Two heavy conv layers: per-layer best is GPU on the high-end SoC; with a
  // huge sync cost and a CPU-visible input, the DP must weigh
  // (sync + 2 GPU layers) against (2 CPU layers) and pick the cheaper.
  Graph g;
  int x = g.AddInput(Shape(1, 64, 28, 28));
  x = g.AddConv("c1", x, 64, 3, 1, 1, true);
  g.AddConv("c2", x, 64, 3, 1, 1, true);
  Model m;
  m.name = "two";
  m.graph = g;
  PlannerFixture s(std::move(m), MakeExynos7420(), ExecConfig::AllF32());
  DpPartitioner::Options opts;
  opts.channel_distribution = false;
  const Plan plan = DpPartitioner(s.model.graph, s.timing, s.config, s.predictor, opts).Build();
  // Both layers on the same processor (no mid-chain switch for same-kind
  // layers).
  EXPECT_EQ(plan.nodes[1].proc, plan.nodes[2].proc);
}

TEST(DpPartitionerTest, RespectsDisabledChannelDistribution) {
  const Model m = MakeVgg16();
  PlannerFixture s(MakeVgg16(), MakeExynos7420(), ExecConfig::AllQU8());
  DpPartitioner::Options opts;
  opts.channel_distribution = false;
  const Plan plan = DpPartitioner(s.model.graph, s.timing, s.config, s.predictor, opts).Build();
  for (const NodeAssignment& a : plan.nodes) {
    EXPECT_NE(a.kind, StepKind::kCooperative);
  }
}

TEST(DpPartitionerTest, KeepsBranchGroupDecisions) {
  PlannerFixture s(MakeGoogLeNet(), MakeExynos7420(), ExecConfig::ProcessorFriendly());
  const Plan dp = DpPartitioner(s.model.graph, s.timing, s.config, s.predictor).Build();
  EXPECT_FALSE(dp.branch_plans.empty());
  for (const BranchPlan& bp : dp.branch_plans) {
    for (const auto& branch : bp.group.branches) {
      for (int id : branch) {
        EXPECT_EQ(dp.nodes[static_cast<size_t>(id)].kind, StepKind::kBranch);
      }
    }
  }
}

}  // namespace
}  // namespace ulayer
