// Property tests over randomly generated (but always valid) graphs:
// structural invariants of branch detection, plan validity, executor
// timeline consistency, serialization round-trips, and bit-exact
// cooperative merges on functional runs.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analyzer.h"
#include "baselines/baselines.h"
#include "core/memory_plan.h"
#include "core/runtime.h"
#include "io/io.h"
#include "tensor/rng.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

// Generates a random valid model: a backbone of conv/pool/lrn layers with
// occasional Fire-style branch groups and residual blocks, ending in
// gap + fc + softmax.
Model RandomModel(uint64_t seed, int max_blocks = 6, int image_hw = 24) {
  Rng rng(seed);
  Model m;
  m.name = "fuzz-" + std::to_string(seed);
  Graph& g = m.graph;
  int x = g.AddInput(Shape(1, 1 + static_cast<int64_t>(rng.Below(3)), image_hw, image_hw));
  const int blocks = 2 + static_cast<int>(rng.Below(static_cast<uint64_t>(max_blocks)));
  for (int b = 0; b < blocks; ++b) {
    const Shape cur = g.node(x).out_shape;
    const uint64_t kind = rng.Below(6);
    const std::string tag = "b" + std::to_string(b);
    if (kind == 0 && cur.h >= 4) {
      x = g.AddPool(tag + "/pool", x, rng.Below(2) == 0 ? PoolKind::kMax : PoolKind::kAvg, 2, 2);
    } else if (kind == 1) {
      x = g.AddLrn(tag + "/lrn", x, LrnParams{});
    } else if (kind == 2) {
      // Fire-style branch group.
      const int64_t squeeze = 4 + static_cast<int64_t>(rng.Below(8));
      const int64_t expand = 8 + static_cast<int64_t>(rng.Below(16));
      const int s = g.AddConv(tag + "/squeeze", x, squeeze, 1, 1, 0, true);
      const int e1 = g.AddConv(tag + "/e1", s, expand, 1, 1, 0, true);
      const int e3 = g.AddConv(tag + "/e3", s, expand, 3, 1, 1, true);
      x = g.AddConcat(tag + "/cat", {e1, e3});
    } else if (kind == 3) {
      // Residual block with identity shortcut (requires a pre-conv so the
      // fork has multiple consumers).
      const int64_t c = 8 + static_cast<int64_t>(rng.Below(8));
      const int pre = g.AddConv(tag + "/pre", x, c, 1, 1, 0, true);
      const int c1 = g.AddConv(tag + "/c1", pre, c, 3, 1, 1, true);
      const int c2 = g.AddConv(tag + "/c2", c1, c, 3, 1, 1, false);
      x = g.AddEltwiseAdd(tag + "/addition", {c2, pre}, true);
    } else if (kind == 4) {
      x = g.AddDepthwiseConv(tag + "/dw", x, 3, 1, 1, true);
    } else {
      const int64_t oc = 4 + static_cast<int64_t>(rng.Below(24));
      const int k = rng.Below(2) == 0 ? 1 : 3;
      x = g.AddConv(tag + "/conv", x, oc, k, 1, k / 2, rng.Below(2) == 0);
    }
  }
  x = g.AddGlobalAvgPool("gap", x);
  x = g.AddFullyConnected("fc", x, 10, false);
  g.AddSoftmax("prob", x);
  return m;
}

class FuzzGraphs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzGraphs, ShapesStayValid) {
  const Model m = RandomModel(GetParam());
  for (const Node& n : m.graph.nodes()) {
    EXPECT_TRUE(n.out_shape.IsValid()) << n.desc.name << " " << n.out_shape.ToString();
  }
}

TEST_P(FuzzGraphs, BranchGroupsAreWellFormed) {
  const Model m = RandomModel(GetParam());
  const Graph& g = m.graph;
  std::vector<int> claimed(static_cast<size_t>(g.size()), 0);
  for (const BranchGroup& bg : FindBranchGroups(g)) {
    EXPECT_GE(bg.fork, 0);
    EXPECT_GT(bg.join, bg.fork);
    EXPECT_GE(bg.branches.size(), 2u);
    for (const auto& branch : bg.branches) {
      for (int id : branch) {
        EXPECT_GT(id, bg.fork);
        EXPECT_LT(id, bg.join);
        ++claimed[static_cast<size_t>(id)];
      }
    }
  }
  // No node belongs to two branch groups (or twice to one).
  for (int c : claimed) {
    EXPECT_LE(c, 1);
  }
}

TEST_P(FuzzGraphs, PlansAreValidAndExecutable) {
  const Model m = RandomModel(GetParam());
  for (const SocSpec& soc : {MakeExynos7420(), MakeExynos7880()}) {
    ULayerRuntime rt(m, soc);
    const Plan& plan = rt.plan();
    ASSERT_EQ(plan.nodes.size(), static_cast<size_t>(m.graph.size()));
    for (const Node& n : m.graph.nodes()) {
      const NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
      if (a.kind == StepKind::kCooperative) {
        EXPECT_GT(a.cpu_fraction, 0.0);
        EXPECT_LT(a.cpu_fraction, 1.0);
        EXPECT_NE(n.desc.kind, LayerKind::kConcat);
        EXPECT_NE(n.desc.kind, LayerKind::kSoftmax);
      }
    }
    const RunResult r = rt.Run();
    EXPECT_GT(r.latency_us, 0.0);
    // The makespan can never be shorter than either device's busy time.
    EXPECT_GE(r.latency_us + 1e-9, r.cpu_busy_us);
    EXPECT_GE(r.latency_us + 1e-9, r.gpu_busy_us);
    EXPECT_NEAR(r.total_energy_mj, r.cpu_energy_mj + r.gpu_energy_mj + r.idle_energy_mj, 1e-9);
    // Determinism.
    EXPECT_DOUBLE_EQ(rt.Run().latency_us, r.latency_us);
  }
}

TEST_P(FuzzGraphs, ULayerNeverLosesToLayerToProcessor) {
  const Model m = RandomModel(GetParam());
  const SocSpec soc = MakeExynos7420();
  const double l2p = RunLayerToProcessor(m, soc, ExecConfig::AllQU8()).latency_us;
  ULayerRuntime rt(m, soc);
  // Allow a small tolerance: the partitioner optimizes layers locally with a
  // regression predictor, so tiny regressions on tiny graphs are possible.
  EXPECT_LT(rt.Run().latency_us, l2p * 1.10);
}

TEST_P(FuzzGraphs, SerializationRoundTrips) {
  const Model m = RandomModel(GetParam());
  const std::string text = GraphToText(m.graph);
  const Graph parsed = GraphFromText(text);
  ASSERT_EQ(parsed.size(), m.graph.size());
  for (int i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed.node(i).out_shape, m.graph.node(i).out_shape) << i;
    EXPECT_EQ(parsed.node(i).inputs, m.graph.node(i).inputs) << i;
  }
  EXPECT_EQ(GraphToText(parsed), text);
}

TEST_P(FuzzGraphs, CooperativeF32MergeIsBitExact) {
  Model m = RandomModel(GetParam(), /*max_blocks=*/4, /*image_hw=*/16);
  m.MaterializeWeights(GetParam());
  PreparedModel pm(m, ExecConfig::AllF32());
  Executor ex(pm, MakeExynos7420());
  Tensor in(m.graph.node(0).out_shape, DType::kF32);
  FillUniform(in, GetParam() ^ 0xabcd, -1.0f, 1.0f);
  const RunResult single = ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kCpu), &in);

  // Force an aggressive split everywhere splittable.
  Plan coop = MakeSingleProcessorPlan(m.graph, ProcKind::kCpu);
  for (const Node& n : m.graph.nodes()) {
    const LayerKind k = n.desc.kind;
    if (k == LayerKind::kInput || k == LayerKind::kConcat || k == LayerKind::kSoftmax) {
      continue;
    }
    coop.nodes[static_cast<size_t>(n.id)] =
        NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.75};
  }
  const RunResult split = ex.Run(coop, &in);
  ASSERT_TRUE(single.output.has_value() && split.output.has_value());
  EXPECT_EQ(MaxAbsDiff(*single.output, *split.output), 0.0f);
}

TEST_P(FuzzGraphs, PartitionerPlansVerifyClean) {
  const Model m = RandomModel(GetParam());
  for (const SocSpec& soc : {MakeExynos7420(), MakeExynos7880()}) {
    ULayerRuntime rt(m, soc);
    const Report r = VerifyPlan(m.graph, rt.plan(), ExecConfig::AllF32());
    EXPECT_TRUE(r.ok()) << m.name << " on " << soc.name << "\n" << r.ToString();
  }
}

// Mutates valid partitioner plans into invalid ones and checks the property
// the verifier guarantees: every mutated plan is either rejected with an
// error diagnostic, or still executes to a finite positive latency. Nothing
// the mutator produces may crash, hang, or yield a non-finite timeline.
TEST_P(FuzzGraphs, MutatedPlansAreRejectedOrExecutable) {
  const Model m = RandomModel(GetParam());
  const SocSpec soc = MakeExynos7420();
  ExecConfig cfg = ExecConfig::AllF32();
  ULayerRuntime rt(m, soc);
  const Plan base = rt.plan();
  const Graph& g = m.graph;
  Rng rng(GetParam() ^ 0x9e3779b9);

  std::vector<Plan> mutants;
  // One mutant per mutation kind, each targeting a random non-input node.
  const auto random_node = [&] {
    return 1 + static_cast<int>(rng.Below(static_cast<uint64_t>(g.size() - 1)));
  };
  {  // Ratios not summing to 1.
    Plan p = base;
    NodeAssignment& a = p.nodes[static_cast<size_t>(random_node())];
    a.kind = StepKind::kCooperative;
    a.cpu_fraction = 0.5;
    a.gpu_fraction = 0.25 + 0.1 * static_cast<double>(rng.Below(10));
    mutants.push_back(std::move(p));
  }
  {  // Overlapping explicit slices.
    Plan p = base;
    const int id = random_node();
    const int64_t c = g.node(id).out_shape.c;
    NodeAssignment& a = p.nodes[static_cast<size_t>(id)];
    a.kind = StepKind::kCooperative;
    a.cpu_slice = ChannelRange{0, c};
    a.gpu_slice = ChannelRange{c / 2, c};
    mutants.push_back(std::move(p));
  }
  {  // Gapped explicit slices.
    Plan p = base;
    const int id = random_node();
    const int64_t c = g.node(id).out_shape.c;
    NodeAssignment& a = p.nodes[static_cast<size_t>(id)];
    a.kind = StepKind::kCooperative;
    a.cpu_slice = ChannelRange{0, 0};
    a.gpu_slice = ChannelRange{c / 2 + 1, c};
    mutants.push_back(std::move(p));
  }
  {  // Out-of-range fraction.
    Plan p = base;
    NodeAssignment& a = p.nodes[static_cast<size_t>(random_node())];
    a.kind = StepKind::kCooperative;
    a.cpu_fraction = -0.5;
    mutants.push_back(std::move(p));
  }
  {  // Cooperative on a layer that may not be splittable (softmax output).
    Plan p = base;
    p.nodes[static_cast<size_t>(g.OutputId())] =
        NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.5};
    mutants.push_back(std::move(p));
  }
  if (!base.branch_plans.empty()) {
    {  // Missing branch assignment.
      Plan p = base;
      p.branch_plans[0].assignment.pop_back();
      mutants.push_back(std::move(p));
    }
    {  // Branch member re-planned as a plain single step.
      Plan p = base;
      const int member = p.branch_plans[0].group.branches[0][0];
      p.nodes[static_cast<size_t>(member)] = NodeAssignment{StepKind::kSingle, ProcKind::kGpu};
      mutants.push_back(std::move(p));
    }
  }
  {  // Truncated plan.
    Plan p = base;
    p.nodes.pop_back();
    mutants.push_back(std::move(p));
  }

  ExecConfig no_verify = cfg;
  no_verify.verify = false;
  PreparedModel pm(m, no_verify);
  Executor ex(pm, soc);
  int rejected = 0;
  for (size_t i = 0; i < mutants.size(); ++i) {
    const Report r = VerifyPlan(g, mutants[i], cfg);
    if (!r.ok()) {
      ++rejected;
      continue;
    }
    // Accepted by the verifier (the mutation happened to stay legal, e.g. a
    // degenerate-but-coherent split): it must then execute cleanly.
    const RunResult res = ex.Run(mutants[i]);
    EXPECT_TRUE(std::isfinite(res.latency_us)) << "mutant " << i;
    EXPECT_GT(res.latency_us, 0.0) << "mutant " << i;
  }
  // The structurally broken mutants (ratio, overlap, gap, fraction,
  // truncation) can never all slip through.
  EXPECT_GE(rejected, 4);
}

// Mutates cooperative slice bounds and checks the analyzer's contract: every
// mutant is either rejected with a typed A-series diagnostic (never a crash),
// or — when both the plan verifier and the analyzer accept it — executes
// byte-identically to the single-CPU reference.
TEST_P(FuzzGraphs, AnalyzerAcceptsOrTypedRejectsMutatedSlices) {
  Model m = RandomModel(GetParam(), /*max_blocks=*/4, /*image_hw=*/16);
  m.MaterializeWeights(GetParam());
  const Graph& g = m.graph;
  const ExecConfig cfg = ExecConfig::AllF32();
  PreparedModel pm(m, cfg);
  Executor ex(pm, MakeExynos7420());
  Tensor in(g.node(0).out_shape, DType::kF32);
  FillUniform(in, GetParam() ^ 0x51ce, -1.0f, 1.0f);
  const RunResult ref = ex.Run(MakeSingleProcessorPlan(g, ProcKind::kCpu), &in);
  ASSERT_TRUE(ref.output.has_value());

  Rng rng(GetParam() ^ 0xa11ce5);
  for (int trial = 0; trial < 9; ++trial) {
    const int id = 1 + static_cast<int>(rng.Below(static_cast<uint64_t>(g.size() - 1)));
    const int64_t c = g.node(id).out_shape.c;
    // Split point plus a deterministic sweep over {gap, exact, overlap}.
    const int64_t s = 1 + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(c)));
    const int64_t d = trial % 3 - 1;
    Plan p = MakeSingleProcessorPlan(g, ProcKind::kCpu);
    NodeAssignment& a = p.nodes[static_cast<size_t>(id)];
    a.kind = StepKind::kCooperative;
    a.cpu_fraction = 0.5;
    a.cpu_slice = ChannelRange{0, std::clamp<int64_t>(s + d, 0, c)};
    a.gpu_slice = ChannelRange{s, c};

    Report ar;
    ASSERT_NO_THROW(ar = analysis::AnalyzePlan(pm, p)) << "trial " << trial;
    for (const Diagnostic& diag : ar.diagnostics()) {
      EXPECT_EQ(DiagCodeId(diag.code)[0], 'A') << diag.ToString();
    }
    const bool overlapping = d > 0 && s + d <= c && s < c;
    if (overlapping && g.node(id).desc.kind != LayerKind::kConcat &&
        g.node(id).desc.kind != LayerKind::kSoftmax) {
      EXPECT_TRUE(ar.Has(DiagCode::kRaceWriteOverlap))
          << "trial " << trial << " node " << id << "\n" << ar.ToString();
    }
    if (VerifyPlan(g, p, cfg).ok() && ar.ok()) {
      const RunResult got = ex.Run(p, &in);
      ASSERT_TRUE(got.output.has_value());
      EXPECT_EQ(MaxAbsDiff(*ref.output, *got.output), 0.0f) << "trial " << trial;
    }
  }
}

// Mutates the packed pool layout itself: the analyzer must reject with a
// typed A-code or accept — and an accepted layout must also pass the dynamic
// shadow cross-check (no silent wrong answer either way).
TEST_P(FuzzGraphs, AnalyzerAcceptsOrTypedRejectsMutatedLayouts) {
  Model m = RandomModel(GetParam(), /*max_blocks=*/4, /*image_hw=*/16);
  m.MaterializeWeights(GetParam());
  const Graph& g = m.graph;
  PreparedModel pm(m, ExecConfig::AllF32());
  const Plan plan = MakeSingleProcessorPlan(g, ProcKind::kCpu);
  const MemoryLayout base = BuildMemoryLayout(pm);
  Tensor in(g.node(0).out_shape, DType::kF32);
  FillUniform(in, GetParam() ^ 0x1a1a, -1.0f, 1.0f);

  Rng rng(GetParam() ^ 0x600dcafe);
  const auto random_buffer = [&] {
    int id;
    do {
      id = 1 + static_cast<int>(rng.Below(static_cast<uint64_t>(g.size() - 1)));
    } while (base.bytes[static_cast<size_t>(id)] == 0);
    return static_cast<size_t>(id);
  };
  for (int trial = 0; trial < 10; ++trial) {
    MemoryLayout lay = base;
    const uint64_t mutation = rng.Below(5);
    bool benign = false;
    if (mutation == 0) {  // Alias one interval onto another buffer's offset.
      lay.offsets[random_buffer()] = lay.offsets[random_buffer()];
    } else if (mutation == 1) {  // Shift an interval by whole cache lines.
      lay.offsets[random_buffer()] += 64 * static_cast<int64_t>(1 + rng.Below(4));
    } else if (mutation == 2) {  // Corrupt an interval's size.
      lay.bytes[random_buffer()] += 64;
    } else if (mutation == 3) {  // Shrink the scratch reservation.
      lay.scratch_bytes /= 2;
    } else {  // Grow the pool: strictly more room must stay accepted.
      lay.pool_bytes += 4096;
      benign = true;
    }

    Report ar;
    ASSERT_NO_THROW(ar = analysis::AnalyzePlan(pm, plan, lay)) << "trial " << trial;
    for (const Diagnostic& diag : ar.diagnostics()) {
      EXPECT_EQ(DiagCodeId(diag.code)[0], 'A') << diag.ToString();
    }
    if (benign) {
      EXPECT_TRUE(ar.ok()) << "trial " << trial << "\n" << ar.ToString();
    }
    if (ar.ok()) {
      Report dynamic;
      ASSERT_NO_THROW(dynamic = analysis::CrossCheckSpecs(pm, plan, lay, in))
          << "trial " << trial;
      EXPECT_TRUE(dynamic.ok()) << "trial " << trial << "\n" << dynamic.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzGraphs,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u, 144u,
                                           233u));

}  // namespace
}  // namespace ulayer
