// Fault-tolerant execution (DESIGN.md Section 10): fault-spec parsing,
// deterministic injection, executor recovery (retry / CPU fallback /
// circuit breaker) and the runtime's degradation policy.
#include "fault/fault.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/runtime.h"
#include "tensor/tensor.h"
#include "trace/trace.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultRule;
using fault::OpKind;

Plan MakeHalfSplitPlan(const Graph& g) {
  Plan plan = MakeSingleProcessorPlan(g, ProcKind::kCpu);
  for (const Node& n : g.nodes()) {
    if (n.desc.kind == LayerKind::kInput || n.desc.kind == LayerKind::kSoftmax ||
        n.desc.kind == LayerKind::kConcat || n.out_shape.c < 2) {
      continue;
    }
    NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    a.kind = StepKind::kCooperative;
    a.cpu_fraction = 0.5;
  }
  return plan;
}

void ExpectSameBytes(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.SizeBytes(), b.SizeBytes());
  EXPECT_EQ(std::memcmp(a.raw(), b.raw(), static_cast<size_t>(a.SizeBytes())), 0);
}

// --- Spec parsing -----------------------------------------------------------

TEST(FaultSpecTest, ParseRoundTrips) {
  const std::string spec =
      "seed=42;gpu.kernel@call:3=enqueue-failed;gpu.any@prob:0.1=timeout:500;"
      "cpu.map@node:7@limit:2=map-failed;gpu.kernel=slow:2.5;gpu.unmap=device-lost";
  const FaultPlan plan = FaultPlan::Parse(spec);
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.rules.size(), 5u);
  EXPECT_EQ(plan.rules[0].device, ProcKind::kGpu);
  EXPECT_EQ(plan.rules[0].op, OpKind::kKernel);
  EXPECT_EQ(plan.rules[0].call, 3);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kEnqueueFailed);
  EXPECT_EQ(plan.rules[1].op, OpKind::kAny);
  EXPECT_DOUBLE_EQ(plan.rules[1].probability, 0.1);
  EXPECT_DOUBLE_EQ(plan.rules[1].timeout_us, 500.0);
  EXPECT_EQ(plan.rules[2].device, ProcKind::kCpu);
  EXPECT_EQ(plan.rules[2].node, 7);
  EXPECT_EQ(plan.rules[2].limit, 2);
  EXPECT_DOUBLE_EQ(plan.rules[3].factor, 2.5);
  EXPECT_EQ(plan.rules[4].kind, FaultKind::kDeviceLost);
  // ToString round-trips through Parse.
  const FaultPlan again = FaultPlan::Parse(plan.ToString());
  EXPECT_EQ(again.ToString(), plan.ToString());
  EXPECT_EQ(again.rules.size(), plan.rules.size());
}

TEST(FaultSpecTest, EmptyAndWhitespaceSpecsAreEmptyPlans) {
  EXPECT_TRUE(FaultPlan::Parse("").empty());
  EXPECT_TRUE(FaultPlan::Parse("  \t ").empty());
  EXPECT_TRUE(FaultPlan::Parse(";;").empty());
}

TEST(FaultSpecTest, MalformedSpecsThrowTypedParseErrors) {
  const char* bad[] = {
      "gpu.kernel",                      // no effect
      "tpu.kernel=enqueue-failed",       // unknown device
      "gpu.warp=enqueue-failed",         // unknown op
      "gpu.kernel=explode",              // unknown effect
      "gpu.kernel@call:0=device-lost",   // call is 1-based
      "gpu.kernel@prob:1.5=device-lost", // prob out of (0, 1]
      "gpu.kernel@prob:abc=device-lost", // malformed value
      "gpu.kernel@soon=device-lost",     // selector without value
      "gpu.kernel=timeout",              // timeout needs an argument
      "gpu.kernel=slow:0.5",             // slow factor must be >= 1
      "seed=xyz",                        // malformed seed
  };
  for (const char* spec : bad) {
    try {
      FaultPlan::Parse(spec);
      FAIL() << "expected parse error for: " << spec;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse) << spec;
      EXPECT_NE(std::string(e.what()).find("fault spec"), std::string::npos) << spec;
    }
  }
}

// --- Net-target grammar (DESIGN.md Section 15) ------------------------------

TEST(FaultSpecTest, NetRulesParseAndRoundTrip) {
  const std::string spec =
      "seed=9;net.link@id:1@call:2=drop;net.link@prob:0.05=delay:250;"
      "net.worker@id:2=death;net.link@id:0=partition";
  const FaultPlan plan = FaultPlan::Parse(spec);
  EXPECT_EQ(plan.seed, 9u);
  ASSERT_EQ(plan.rules.size(), 4u);
  EXPECT_EQ(plan.rules[0].target, fault::FaultTarget::kNetLink);
  EXPECT_EQ(plan.rules[0].net_id, 1);
  EXPECT_EQ(plan.rules[0].call, 2);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kDrop);
  EXPECT_EQ(plan.rules[1].net_id, -1) << "any-link rule";
  EXPECT_DOUBLE_EQ(plan.rules[1].probability, 0.05);
  EXPECT_EQ(plan.rules[1].kind, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(plan.rules[1].delay_us, 250.0);
  EXPECT_EQ(plan.rules[2].target, fault::FaultTarget::kNetWorker);
  EXPECT_EQ(plan.rules[2].net_id, 2);
  EXPECT_EQ(plan.rules[2].kind, FaultKind::kWorkerDeath);
  EXPECT_EQ(plan.rules[3].kind, FaultKind::kPartition);
  // ToString round-trips through Parse, mixed with device rules.
  const FaultPlan again = FaultPlan::Parse(plan.ToString());
  EXPECT_EQ(again.ToString(), plan.ToString());
  const FaultPlan mixed =
      FaultPlan::Parse("gpu.kernel@call:3=enqueue-failed;net.worker@id:0=death");
  EXPECT_EQ(FaultPlan::Parse(mixed.ToString()).ToString(), mixed.ToString());
}

TEST(FaultSpecTest, MalformedNetSpecsThrowTypedParseErrors) {
  const char* bad[] = {
      "net.kernel=drop",              // unknown net op class
      "net=drop",                     // missing op class
      "net.link=death",               // death needs a net.worker target
      "net.worker=drop",              // drop needs a net.link target
      "net.worker=delay:100",         // delay needs a net.link target
      "net.worker=partition",         // partition needs a net.link target
      "cpu.kernel=drop",              // net effect on a device target
      "gpu.any=death",                // net effect on a device target
      "net.link=enqueue-failed",      // device effect on a net target
      "net.worker=timeout:100",       // device effect on a net target
      "net.link=slow:2",              // device effect on a net target
      "gpu.kernel@id:1=device-lost",  // @id selector on a device target
      "net.link@id:abc=drop",         // malformed id
      "net.link@id:-2=drop",          // id out of domain
      "net.link=delay",               // delay needs an argument
      "net.link=delay:-5",            // negative delay
      "net.link=delay:nan",           // non-finite delay
  };
  for (const char* spec : bad) {
    try {
      FaultPlan::Parse(spec);
      FAIL() << "expected parse error for: " << spec;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse) << spec;
      EXPECT_NE(std::string(e.what()).find("fault spec"), std::string::npos) << spec;
    }
  }
}

// --- Injector determinism ---------------------------------------------------

TEST(FaultInjectorTest, ProbabilisticStreamIsSeededAndRepeatable) {
  const FaultPlan plan = FaultPlan::Parse("seed=7;gpu.kernel@prob:0.3=enqueue-failed");
  fault::FaultInjector fi(plan);
  std::vector<int64_t> first;
  for (int i = 0; i < 64; ++i) {
    if (fi.OnCall(ProcKind::kGpu, OpKind::kKernel, 0.0).has_value()) {
      first.push_back(i);
    }
  }
  ASSERT_FALSE(first.empty());
  ASSERT_LT(first.size(), 64u);
  fi.ResetRun();
  std::vector<int64_t> second;
  for (int i = 0; i < 64; ++i) {
    if (fi.OnCall(ProcKind::kGpu, OpKind::kKernel, 0.0).has_value()) {
      second.push_back(i);
    }
  }
  EXPECT_EQ(first, second);
  // A different seed gives a different trace (overwhelmingly likely).
  FaultPlan other = plan;
  other.seed = 8;
  fault::FaultInjector fi2(other);
  std::vector<int64_t> third;
  for (int i = 0; i < 64; ++i) {
    if (fi2.OnCall(ProcKind::kGpu, OpKind::kKernel, 0.0).has_value()) {
      third.push_back(i);
    }
  }
  EXPECT_NE(first, third);
}

TEST(FaultInjectorTest, SelectorsMatchCallNodeAndLimit) {
  const FaultPlan plan =
      FaultPlan::Parse("gpu.kernel@call:2=enqueue-failed;gpu.map@node:5@limit:1=map-failed");
  fault::FaultInjector fi(plan);
  EXPECT_FALSE(fi.OnCall(ProcKind::kGpu, OpKind::kKernel, 0.0).has_value());
  EXPECT_TRUE(fi.OnCall(ProcKind::kGpu, OpKind::kKernel, 0.0).has_value());
  EXPECT_FALSE(fi.OnCall(ProcKind::kGpu, OpKind::kKernel, 0.0).has_value());
  // Node selector: only fires while the executor tags node 5, and the limit
  // caps it at one firing.
  EXPECT_FALSE(fi.OnCall(ProcKind::kGpu, OpKind::kMap, 0.0).has_value());
  fi.set_current_node(5);
  EXPECT_TRUE(fi.OnCall(ProcKind::kGpu, OpKind::kMap, 0.0).has_value());
  EXPECT_FALSE(fi.OnCall(ProcKind::kGpu, OpKind::kMap, 0.0).has_value());
  ASSERT_EQ(fi.events().size(), 2u);
  EXPECT_EQ(fi.events()[0].kind, FaultKind::kEnqueueFailed);
  EXPECT_EQ(fi.events()[1].node, 5);
}

TEST(FaultInjectorTest, NetCountersArePerInstanceAndIndependent) {
  // Regression for the old counts_[2][3] device table: with one counter per
  // (target, instance, op) the @call clocks of two links must tick
  // independently, and must not advance any device clock.
  const FaultPlan plan = FaultPlan::Parse(
      "net.link@id:0@call:2=drop;net.link@id:1@call:2=delay:50;"
      "net.worker@id:0@call:1=death;gpu.kernel@call:1=enqueue-failed");
  fault::FaultInjector fi(plan);
  using fault::FaultTarget;
  // First attempt on each link: neither @call:2 rule fires.
  EXPECT_FALSE(fi.OnNetCall(FaultTarget::kNetLink, 0, 0.0).has_value());
  EXPECT_FALSE(fi.OnNetCall(FaultTarget::kNetLink, 1, 0.0).has_value());
  // Second attempt on each link fires its own rule, not the other's.
  const auto drop = fi.OnNetCall(FaultTarget::kNetLink, 0, 1.0);
  ASSERT_TRUE(drop.has_value());
  EXPECT_EQ(drop->kind, FaultKind::kDrop);
  const auto delay = fi.OnNetCall(FaultTarget::kNetLink, 1, 2.0);
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(delay->kind, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(delay->delay_us, 50.0);
  // The worker timeline is separate from the link timeline with the same id:
  // four link calls have happened, yet worker 0's first call still matches
  // @call:1.
  const auto death = fi.OnNetCall(FaultTarget::kNetWorker, 0, 3.0);
  ASSERT_TRUE(death.has_value());
  EXPECT_EQ(death->kind, FaultKind::kWorkerDeath);
  // And the device clock never moved: the gpu rule still fires on its first
  // real enqueue.
  EXPECT_TRUE(fi.OnCall(ProcKind::kGpu, OpKind::kKernel, 4.0).has_value());
  ASSERT_EQ(fi.events().size(), 4u);
  EXPECT_EQ(fi.events()[0].net_id, 0);
  EXPECT_EQ(fi.events()[1].net_id, 1);
  EXPECT_EQ(fi.events()[2].target, FaultTarget::kNetWorker);
  EXPECT_EQ(fi.events()[3].target, FaultTarget::kDevice);
}

TEST(FaultInjectorTest, AnyIdNetRulesCountTheAggregateStream) {
  // An @id-less rule counts every matching net call, whichever link it hits.
  const FaultPlan plan = FaultPlan::Parse("net.link@call:3=drop");
  fault::FaultInjector fi(plan);
  using fault::FaultTarget;
  EXPECT_FALSE(fi.OnNetCall(FaultTarget::kNetLink, 0, 0.0).has_value());
  EXPECT_FALSE(fi.OnNetCall(FaultTarget::kNetLink, 2, 0.0).has_value());
  const auto third = fi.OnNetCall(FaultTarget::kNetLink, 1, 0.0);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->kind, FaultKind::kDrop);
  EXPECT_EQ(fi.events()[0].net_id, 1) << "event records the id actually hit";
  // ResetRun rewinds the per-instance counters too.
  fi.ResetRun();
  EXPECT_FALSE(fi.OnNetCall(FaultTarget::kNetLink, 0, 0.0).has_value());
  EXPECT_FALSE(fi.OnNetCall(FaultTarget::kNetLink, 0, 0.0).has_value());
  EXPECT_TRUE(fi.OnNetCall(FaultTarget::kNetLink, 0, 0.0).has_value());
}

// --- ucl-level injection ----------------------------------------------------

TEST(UclFaultTest, FailFastFaultsChargeNothing) {
  ucl::Context ctx(MakeExynos7420());
  fault::FaultInjector fi(FaultPlan::Parse("gpu.kernel@call:1=enqueue-failed"));
  ctx.SetFaultInjector(&fi);
  const ucl::EnqueueResult fail = ctx.queue(ProcKind::kGpu).EnqueueKernel(100.0, DType::kF16, 0.0);
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(fail.status, ucl::Status::kEnqueueFailed);
  EXPECT_DOUBLE_EQ(ctx.device(ProcKind::kGpu).now_us(), 0.0) << "no timeline charge";
  const ucl::EnqueueResult ok = ctx.queue(ProcKind::kGpu).EnqueueKernel(100.0, DType::kF16, 0.0);
  EXPECT_TRUE(ok.ok());
  EXPECT_GT(ok.event.complete_us, 0.0);
}

TEST(UclFaultTest, TimeoutOccupiesTheDevice) {
  ucl::Context ctx(MakeExynos7420());
  fault::FaultInjector fi(FaultPlan::Parse("gpu.kernel@call:1=timeout:500"));
  ctx.SetFaultInjector(&fi);
  const ucl::EnqueueResult res = ctx.queue(ProcKind::kGpu).EnqueueKernel(100.0, DType::kF16, 0.0);
  EXPECT_EQ(res.status, ucl::Status::kTimeout);
  EXPECT_DOUBLE_EQ(res.event.complete_us - res.event.start_us, 500.0);
  EXPECT_DOUBLE_EQ(ctx.device(ProcKind::kGpu).now_us(), 500.0) << "device busy over the window";
}

TEST(UclFaultTest, SlowdownStretchesTheKernelBody) {
  const SocSpec soc = MakeExynos7420();
  ucl::Context plain(soc);
  const double base = plain.queue(ProcKind::kGpu)
                          .EnqueueKernel(100.0, DType::kF16, 0.0)
                          .event.complete_us;
  ucl::Context throttled(soc);
  fault::FaultInjector fi(FaultPlan::Parse("gpu.kernel=slow:2"));
  throttled.SetFaultInjector(&fi);
  const ucl::EnqueueResult res =
      throttled.queue(ProcKind::kGpu).EnqueueKernel(100.0, DType::kF16, 0.0);
  EXPECT_TRUE(res.ok()) << "a throttled kernel still succeeds";
  EXPECT_DOUBLE_EQ(res.event.complete_us, base + 100.0) << "body doubled, launch unchanged";
  EXPECT_EQ(fi.slowdown_count(), 1);
}

TEST(UclFaultTest, MapFaultsHitMapAndUnmapSeparately) {
  ucl::Context ctx(MakeExynos7420());
  fault::FaultInjector fi(FaultPlan::Parse("gpu.map@call:1=map-failed"));
  ctx.SetFaultInjector(&fi);
  const auto buf = ctx.CreateBuffer(1024, ucl::MemFlag::kAllocHostPtr);
  EXPECT_EQ(ctx.queue(ProcKind::kGpu).EnqueueMap(*buf, ucl::MapAccess::kRead).status,
            ucl::Status::kMapFailed);
  EXPECT_TRUE(ctx.queue(ProcKind::kGpu).EnqueueUnmap(*buf).ok())
      << "unmap is a separate op class";
}

// --- Executor recovery ------------------------------------------------------

TEST(FaultExecutorTest, EmptyPlanIsBitIdenticalToNoPlan) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const Shape in_shape(1, 1, 28, 28);
  Tensor input(in_shape, DType::kF32);
  FillUniform(input, 777, -1.0f, 1.0f);

  PreparedModel pm(m, ExecConfig::AllF32());
  const SocSpec soc = MakeExynos7420();
  const Plan plan = MakeHalfSplitPlan(m.graph);

  Executor plain(pm, soc);
  const RunResult a = plain.Run(plan, &input);
  Executor with_empty(pm, soc);
  with_empty.SetFaultPlan(FaultPlan{});
  const RunResult b = with_empty.Run(plan, &input);

  EXPECT_DOUBLE_EQ(a.latency_us, b.latency_us);
  EXPECT_DOUBLE_EQ(a.total_energy_mj, b.total_energy_mj);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].node, b.trace[i].node);
    EXPECT_EQ(a.trace[i].proc, b.trace[i].proc);
    EXPECT_DOUBLE_EQ(a.trace[i].start_us, b.trace[i].start_us);
    EXPECT_DOUBLE_EQ(a.trace[i].end_us, b.trace[i].end_us);
  }
  EXPECT_FALSE(a.degradation.degraded());
  EXPECT_FALSE(b.degradation.degraded());
  EXPECT_EQ(b.degradation.final_mode, RunMode::kNormal);
  ExpectSameBytes(*a.output, *b.output);
}

TEST(FaultExecutorTest, SeededFaultRunsAreDeterministic) {
  const Model m = MakeGoogLeNet();
  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  Executor ex(pm, MakeExynos7420());
  ex.SetFaultPlan(FaultPlan::Parse("seed=11;gpu.any@prob:0.2=enqueue-failed"));
  const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kGpu);
  const RunResult a = ex.Run(plan);
  const RunResult b = ex.Run(plan);
  EXPECT_GT(a.degradation.faults_injected, 0);
  EXPECT_DOUBLE_EQ(a.latency_us, b.latency_us);
  EXPECT_EQ(a.degradation.retries, b.degradation.retries);
  EXPECT_EQ(a.degradation.fallbacks, b.degradation.fallbacks);
  EXPECT_EQ(a.degradation.faults_injected, b.degradation.faults_injected);
  ASSERT_EQ(a.degradation.events.size(), b.degradation.events.size());
  for (size_t i = 0; i < a.degradation.events.size(); ++i) {
    EXPECT_EQ(a.degradation.events[i].ToString(), b.degradation.events[i].ToString());
  }
}

TEST(FaultExecutorTest, RetriesAreBoundedAndCosted) {
  const Model m = MakeLeNet5();
  ExecConfig cfg = ExecConfig::ProcessorFriendly();
  cfg.fault_max_retries = 3;
  PreparedModel pm(m, cfg);
  const SocSpec soc = MakeExynos7420();
  Executor ex(pm, soc);
  const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kGpu);
  const double clean_us = ex.Run(plan).latency_us;

  // The first two attempts of the first GPU kernel fail; the third succeeds.
  ex.SetFaultPlan(FaultPlan::Parse("gpu.kernel@limit:2=enqueue-failed"));
  const RunResult r = ex.Run(plan);
  EXPECT_EQ(r.degradation.retries, 2);
  EXPECT_EQ(r.degradation.fallbacks, 0);
  EXPECT_EQ(r.degradation.faults_injected, 2);
  EXPECT_EQ(r.degradation.final_mode, RunMode::kDegraded);
  // Backoff is costed on the simulated timeline: 25 + 50 us by default.
  EXPECT_GT(r.latency_us, clean_us);
}

// --- Retry accounting audit (DESIGN.md Section 11) ---------------------------

// A timed-out enqueue occupies the device over its window; the injector logs
// that window as FaultEvent::charged_us. The run's gpu_busy_us must equal the
// fault-free busy time plus exactly the sum of the charged windows — no
// double-charging, no forgotten map-path timeouts.
TEST(FaultExecutorTest, TimeoutsChargeTheGpuExactlyOnce) {
  const Model m = MakeLeNet5();
  ExecConfig cfg = ExecConfig::ProcessorFriendly();
  cfg.fault_max_retries = 4;  // Enough headroom: every timeout is retried,
                              // no fallback re-executes work on the CPU.
  PreparedModel pm(m, cfg);
  const SocSpec soc = MakeExynos7420();
  // Cooperative steps exercise the zero-copy map path too — a GPU-only plan
  // never maps, and the map-timeout charge was the historical bug.
  const Plan plan = MakeHalfSplitPlan(m.graph);
  Executor ex(pm, soc);
  const double clean_gpu_busy = ex.Run(plan).gpu_busy_us;

  ex.SetFaultPlan(FaultPlan::Parse("gpu.kernel@limit:2=timeout:150;gpu.map@limit:1=timeout:80"));
  const RunResult r = ex.Run(plan);
  EXPECT_EQ(r.degradation.fallbacks, 0) << "a fallback would re-time the work";
  ASSERT_GT(r.degradation.faults_injected, 0);
  double charged = 0.0;
  for (const fault::FaultEvent& e : r.degradation.events) {
    EXPECT_EQ(e.kind, FaultKind::kTimeout);
    EXPECT_GT(e.charged_us, 0.0) << "timeouts occupy their window";
    charged += e.charged_us;
  }
  EXPECT_DOUBLE_EQ(charged, 2 * 150.0 + 80.0);
  EXPECT_NEAR(r.gpu_busy_us, clean_gpu_busy + charged, 1e-9 * r.gpu_busy_us)
      << "busy time must grow by exactly the injector's charged windows";
}

// Fail-fast faults (enqueue-failed, map-failed, device-lost) never reach the
// device: the injector charges nothing and gpu_busy_us stays bit-identical
// to the fault-free run even though the schedule shifted under retries.
TEST(FaultExecutorTest, FailFastFaultsChargeNoGpuTime) {
  const Model m = MakeLeNet5();
  ExecConfig cfg = ExecConfig::ProcessorFriendly();
  cfg.fault_max_retries = 4;
  PreparedModel pm(m, cfg);
  const SocSpec soc = MakeExynos7420();
  const Plan plan = MakeSingleProcessorPlan(m.graph, ProcKind::kGpu);
  Executor ex(pm, soc);
  const double clean_gpu_busy = ex.Run(plan).gpu_busy_us;

  ex.SetFaultPlan(FaultPlan::Parse("gpu.kernel@limit:2=enqueue-failed;gpu.map@limit:1=map-failed"));
  const RunResult r = ex.Run(plan);
  EXPECT_EQ(r.degradation.fallbacks, 0);
  ASSERT_GT(r.degradation.retries, 0);
  for (const fault::FaultEvent& e : r.degradation.events) {
    EXPECT_DOUBLE_EQ(e.charged_us, 0.0) << "fail-fast faults must not charge the device";
  }
  EXPECT_DOUBLE_EQ(r.gpu_busy_us, clean_gpu_busy)
      << "retry losses are latency, never device occupancy";
}

// Regression for the pre-observability accounting bug: a CPU fallback used to
// appear as two indistinguishable CPU kernel entries, silently dropping the
// aborted GPU attempt. Under the committed CI fault spec, the trace must keep
// per-device busy-time accounting coherent (the T401-T406 invariants) and tag
// recovery work so it is distinguishable from planned work.
TEST(FaultExecutorTest, BusySpanSumsHoldUnderTheCiFaultSpec) {
  std::ifstream in(std::string(ULAYER_SOURCE_DIR) + "/scripts/ci_faults.spec");
  if (!in) {
    GTEST_SKIP() << "scripts/ci_faults.spec not reachable from the test binary";
  }
  std::string spec, line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') {
      continue;
    }
    for (const char c : line) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        spec += c;
      }
    }
  }
  ASSERT_FALSE(spec.empty());

  const Model m = MakeGoogLeNet();
  ULayerRuntime::Options opts;
  opts.config = ExecConfig::ProcessorFriendly();
  opts.config.trace = true;
  opts.faults = FaultPlan::Parse(spec);
  ULayerRuntime rt(m, MakeExynos7420(), opts);
  const RunResult r = rt.Run();
  ASSERT_TRUE(r.run_trace.enabled);
  ASSERT_GT(r.degradation.faults_injected, 0);

  const Report report = VerifyRunTrace(r.run_trace);
  EXPECT_TRUE(report.ok()) << report.ToString();

  // Manual cross-check of the T404 invariant the verifier enforces: the
  // occupying spans partition each device's busy time.
  double busy[2] = {0.0, 0.0};
  int failed_attempts = 0;
  int fallbacks = 0;
  for (const trace::Span& sp : r.run_trace.spans) {
    if (trace::IsOccupying(sp.kind)) {
      busy[sp.proc == ProcKind::kCpu ? 0 : 1] += sp.duration_us();
    }
    if (sp.fault == trace::FaultTag::kFailedAttempt) {
      EXPECT_EQ(sp.kind, trace::SpanKind::kAttempt);
      EXPECT_GE(sp.fault_event, 0) << "attempts link back to the injector log";
      ++failed_attempts;
    }
    if (sp.fault == trace::FaultTag::kFallback && sp.kind == trace::SpanKind::kKernel) {
      EXPECT_EQ(sp.proc, ProcKind::kCpu) << "fallback re-execution runs on the CPU";
      ++fallbacks;
    }
  }
  EXPECT_NEAR(busy[0], r.cpu_busy_us, 1e-9 * std::max(1.0, r.cpu_busy_us));
  EXPECT_NEAR(busy[1], r.gpu_busy_us, 1e-9 * std::max(1.0, r.gpu_busy_us));
  EXPECT_GT(failed_attempts, 0) << "the spec injects GPU failures";
  EXPECT_EQ(fallbacks, static_cast<int>(r.degradation.fallbacks))
      << "every fallback kernel is tagged, none double-counted";
}

TEST(FaultExecutorTest, DeviceLostTripsTheCircuitBreaker) {
  const Model m = MakeGoogLeNet();
  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  Executor ex(pm, MakeExynos7420());
  ex.SetFaultPlan(FaultPlan::Parse("gpu.kernel@call:1=device-lost"));
  const RunResult r = ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kGpu));
  EXPECT_TRUE(r.degradation.circuit_open);
  EXPECT_EQ(r.degradation.final_mode, RunMode::kCpuOnly);
  EXPECT_EQ(r.degradation.fallbacks, 1) << "the failing step falls back";
  EXPECT_GT(r.degradation.rerouted_steps, 0) << "the rest is rerouted";
  EXPECT_DOUBLE_EQ(r.gpu_busy_us, 0.0) << "fail-fast loss never occupies the GPU";
  int failed_attempts = 0;
  for (const KernelTrace& t : r.trace) {
    if (t.tag == trace::FaultTag::kFailedAttempt) {
      // The aborted GPU enqueue stays on the record, zero-width (fail-fast).
      EXPECT_EQ(t.proc, ProcKind::kGpu);
      EXPECT_DOUBLE_EQ(t.end_us, t.start_us);
      ++failed_attempts;
      continue;
    }
    EXPECT_EQ(t.proc, ProcKind::kCpu) << "all completed work ran on the CPU";
  }
  EXPECT_EQ(failed_attempts, 1) << "one device-lost attempt, annotated";
}

TEST(FaultExecutorTest, FallbackDisabledThrowsTypedFault) {
  const Model m = MakeLeNet5();
  ExecConfig cfg = ExecConfig::ProcessorFriendly();
  cfg.fault_cpu_fallback = false;
  cfg.fault_max_retries = 0;
  PreparedModel pm(m, cfg);
  Executor ex(pm, MakeExynos7420());
  ex.SetFaultPlan(FaultPlan::Parse("gpu.kernel@call:1=enqueue-failed"));
  try {
    ex.Run(MakeSingleProcessorPlan(m.graph, ProcKind::kGpu));
    FAIL() << "expected ulayer::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFault);
    EXPECT_GE(e.node(), 0);
    ASSERT_TRUE(e.proc().has_value());
    EXPECT_EQ(*e.proc(), ProcKind::kGpu);
  }
}

// The core robustness guarantee: under any GPU fault spec, recovery
// reproduces the fault-free output byte for byte (the channel slices
// partition the output, and with matching CPU/GPU kernel flavors the
// fallback computes the identical function).
TEST(FaultExecutorTest, FallbackOutputIsByteIdenticalAcrossZooAndPlans) {
  const char* specs[] = {
      "gpu.kernel=enqueue-failed",                 // every GPU kernel fails
      "seed=3;gpu.any@prob:0.5=enqueue-failed",    // random failures
      "gpu.kernel@call:2=device-lost",             // breaker mid-run
      "gpu.kernel@call:1=timeout:200;gpu.map@prob:0.4=map-failed",  // mixed
  };
  struct Case {
    Model model;
    Shape in_shape;
  };
  Case cases[] = {
      {MakeLeNet5(), Shape(1, 1, 28, 28)},
      {MakeSqueezeNetV11(1, 64), Shape(1, 3, 64, 64)},
  };
  const SocSpec soc = MakeExynos7420();
  for (Case& c : cases) {
    c.model.MaterializeWeights();
    Tensor input(c.in_shape, DType::kF32);
    FillUniform(input, 4242, -1.0f, 1.0f);
    PreparedModel pm(c.model, ExecConfig::AllF32());
    const Plan plans[] = {MakeSingleProcessorPlan(c.model.graph, ProcKind::kGpu),
                          MakeHalfSplitPlan(c.model.graph)};
    for (const Plan& plan : plans) {
      Executor clean(pm, soc);
      const RunResult want = clean.Run(plan, &input);
      ASSERT_TRUE(want.output.has_value());
      for (const char* spec : specs) {
        Executor faulted(pm, soc);
        faulted.SetFaultPlan(FaultPlan::Parse(spec));
        const RunResult got = faulted.Run(plan, &input);
        ASSERT_TRUE(got.output.has_value()) << c.model.name << " spec=" << spec;
        ExpectSameBytes(*want.output, *got.output);
      }
    }
  }
}

// Same guarantee for the QUInt8 integer kernels (AllQU8: both processors run
// the identical quantized kernel, so the fallback is bit-exact).
TEST(FaultExecutorTest, QuantizedFallbackIsByteIdentical) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const Shape in_shape(1, 1, 28, 28);
  std::vector<Tensor> calib;
  Tensor t(in_shape, DType::kF32);
  FillUniform(t, 900, -1.0f, 1.0f);
  calib.push_back(std::move(t));
  Tensor input(in_shape, DType::kF32);
  FillUniform(input, 901, -1.0f, 1.0f);

  PreparedModel pm(m, ExecConfig::AllQU8());
  pm.Calibrate(calib);
  const SocSpec soc = MakeExynos7420();
  const Plan plan = MakeHalfSplitPlan(m.graph);
  Executor clean(pm, soc);
  const RunResult want = clean.Run(plan, &input);
  Executor faulted(pm, soc);
  faulted.SetFaultPlan(FaultPlan::Parse("gpu.kernel=enqueue-failed"));
  const RunResult got = faulted.Run(plan, &input);
  EXPECT_GT(got.degradation.fallbacks, 0);
  ExpectSameBytes(*want.output, *got.output);
}

// --- Config validation ------------------------------------------------------

TEST(ExecConfigValidationTest, ReportsTypedDiagnostics) {
  {
    ExecConfig bad = ExecConfig::AllF32();
    bad.gpu_compute = DType::kF16;  // No kernel computes F16 over F32 storage.
    const Report r = VerifyExecConfig(bad);
    EXPECT_TRUE(r.Has(DiagCode::kConfigUnimplementedCompute));
    EXPECT_FALSE(r.ok());
  }
  {
    ExecConfig bad = ExecConfig::AllF32();
    bad.cpu_threads = -2;
    const Report r = VerifyExecConfig(bad);
    EXPECT_TRUE(r.Has(DiagCode::kConfigNegativeThreads));
  }
  {
    ExecConfig bad = ExecConfig::AllF32();
    bad.fault_max_retries = -1;
    EXPECT_TRUE(VerifyExecConfig(bad).Has(DiagCode::kConfigBadFaultPolicy));
  }
  {
    ExecConfig bad = ExecConfig::AllF32();
    bad.fault_backoff_us = -5.0;
    EXPECT_TRUE(VerifyExecConfig(bad).Has(DiagCode::kConfigBadFaultPolicy));
  }
  EXPECT_TRUE(VerifyExecConfig(ExecConfig::AllF32()).ok());
  EXPECT_TRUE(VerifyExecConfig(ExecConfig::AllF16()).ok());
  EXPECT_TRUE(VerifyExecConfig(ExecConfig::AllQU8()).ok());
  EXPECT_TRUE(VerifyExecConfig(ExecConfig::ProcessorFriendly()).ok());
}

TEST(ExecConfigValidationTest, ConstructorsRejectBadConfigs) {
  const Model m = MakeLeNet5();
  ExecConfig bad = ExecConfig::AllF32();
  bad.cpu_threads = -1;
  EXPECT_THROW(
      {
        PreparedModel pm(m, bad);
        Executor ex(pm, MakeExynos7420());
      },
      VerifyError);
  ULayerRuntime::Options opts;
  opts.config = bad;
  EXPECT_THROW(ULayerRuntime(m, MakeExynos7420(), opts), VerifyError);
  // VerifyError is a ulayer::Error with the kVerify code.
  try {
    PreparedModel pm(m, bad);
    Executor ex(pm, MakeExynos7420());
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kVerify);
  }
}

// --- Runtime degradation policy ---------------------------------------------

TEST(RuntimePolicyTest, DeviceLostReplansCpuOnly) {
  const Model m = MakeGoogLeNet();
  ULayerRuntime::Options opts;
  opts.faults = FaultPlan::Parse("gpu.kernel@call:1=device-lost");
  ULayerRuntime rt(m, MakeExynos7420(), opts);
  const RunResult first = rt.Run();
  EXPECT_TRUE(first.degradation.circuit_open);
  EXPECT_EQ(rt.mode(), RunMode::kCpuOnly);
  EXPECT_TRUE(rt.gpu_health().excluded);
  EXPECT_EQ(rt.replans(), 1);
  EXPECT_EQ(first.degradation.replans, 1);
  EXPECT_EQ(first.degradation.final_mode, RunMode::kCpuOnly);
  // The rebuilt plan never touches the GPU, so the (still armed) fault rule
  // cannot fire again and the run is clean.
  const RunResult second = rt.Run();
  EXPECT_EQ(second.degradation.faults_injected, 0);
  EXPECT_FALSE(second.degradation.circuit_open);
  EXPECT_DOUBLE_EQ(second.gpu_busy_us, 0.0);
  EXPECT_EQ(second.degradation.final_mode, RunMode::kCpuOnly) << "session stays CPU-only";
  EXPECT_EQ(rt.replans(), 1) << "no further replans";
  for (const NodeAssignment& a : rt.plan().nodes) {
    EXPECT_NE(a.kind, StepKind::kCooperative);
    EXPECT_EQ(a.proc, ProcKind::kCpu);
  }
}

TEST(RuntimePolicyTest, RepeatedFailuresExcludeTheGpu) {
  const Model m = MakeGoogLeNet();
  ULayerRuntime::Options opts;
  // Every run's first GPU kernel fails over to the CPU (retries exhausted).
  opts.faults = FaultPlan::Parse("gpu.kernel@call:1=enqueue-failed;"
                                 "gpu.kernel@call:2=enqueue-failed;"
                                 "gpu.kernel@call:3=enqueue-failed;"
                                 "gpu.kernel@call:4=enqueue-failed");
  opts.replan_after_failures = 2;
  ULayerRuntime rt(m, MakeExynos7420(), opts);
  const RunResult r1 = rt.Run();
  EXPECT_GT(r1.degradation.fallbacks, 0);
  EXPECT_EQ(rt.mode(), RunMode::kNormal) << "one bad run is not enough";
  EXPECT_EQ(rt.gpu_health().consecutive_failures, 1);
  const RunResult r2 = rt.Run();
  EXPECT_GT(r2.degradation.fallbacks, 0);
  EXPECT_EQ(rt.gpu_health().consecutive_failures, 2);
  EXPECT_EQ(rt.mode(), RunMode::kCpuOnly) << "two consecutive failed runs trip the policy";
  EXPECT_EQ(rt.replans(), 1);
}

TEST(RuntimePolicyTest, ThrottleTriggersRescaledReplan) {
  const Model m = MakeVgg16();
  ULayerRuntime::Options opts;
  opts.faults = FaultPlan::Parse("gpu.kernel=slow:2.5");  // persistent throttle
  ULayerRuntime rt(m, MakeExynos7420(), opts);
  ASSERT_FALSE(rt.gpu_health().excluded);
  const RunResult first = rt.Run();
  EXPECT_GT(first.degradation.slowdowns, 0);
  EXPECT_GT(rt.gpu_health().observed_over_predicted, 1.25)
      << "throttle must show in the observed/predicted ratio";
  EXPECT_EQ(rt.replans(), 1) << "one rescaled replan";
  EXPECT_GT(rt.gpu_health().applied_time_scale, 1.25);
  EXPECT_FALSE(rt.gpu_health().excluded) << "throttling degrades, it does not exclude";
  EXPECT_EQ(rt.mode(), RunMode::kDegraded);
  // The rescaled plan shifts work to the CPU; the policy converges (the
  // observed ratio now sits within the applied scale's band).
  const int replans_after_first = rt.replans();
  rt.Run();
  EXPECT_EQ(rt.replans(), replans_after_first) << "policy converged, no replan churn";
}

TEST(RuntimePolicyTest, FaultFreeRatioIsExactlyOne) {
  const Model m = MakeVgg16();
  ULayerRuntime rt(m, MakeExynos7420());
  rt.Run();
  EXPECT_DOUBLE_EQ(rt.gpu_health().observed_over_predicted, 1.0)
      << "the simulation runs on the timing model, so fault-free ratio is exact";
  EXPECT_EQ(rt.replans(), 0);
  EXPECT_EQ(rt.mode(), RunMode::kNormal);
}

// --- Fuzz: mutated specs either parse or throw, and never break recovery ----

TEST(FaultFuzzTest, MutatedSpecsParseOrThrowAndRecoveryHolds) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const Shape in_shape(1, 1, 28, 28);
  Tensor input(in_shape, DType::kF32);
  FillUniform(input, 5150, -1.0f, 1.0f);
  PreparedModel pm(m, ExecConfig::AllF32());
  const SocSpec soc = MakeExynos7420();
  const Plan plan = MakeHalfSplitPlan(m.graph);
  Executor clean(pm, soc);
  const RunResult want = clean.Run(plan, &input);

  // The base spec mixes device and net rules so mutations cross the target
  // families (e.g. turning `net.link` into `net.kernel`, or `drop` into a
  // device effect). Net rules never match a device executor's OnCall stream,
  // so the byte-identity assertion below holds whatever net rules survive.
  const std::string base =
      "seed=9;gpu.kernel@prob:0.3=enqueue-failed;gpu.map@call:2=timeout:50;"
      "gpu.any=slow:1.5;net.link@id:1@prob:0.2=drop;net.worker@id:0=death";
  const char alphabet[] = "gpu.cpukernlmapyioh@:;=0123456789-abcdefstw ";
  uint64_t rng = 0x5eed;
  const auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  int parsed = 0;
  int rejected = 0;
  for (int iter = 0; iter < 200; ++iter) {
    std::string spec = base;
    const int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits; ++e) {
      const size_t pos = next() % spec.size();
      switch (next() % 3) {
        case 0:  // replace
          spec[pos] = alphabet[next() % (sizeof(alphabet) - 1)];
          break;
        case 1:  // delete
          spec.erase(pos, 1);
          break;
        default:  // insert
          spec.insert(pos, 1, alphabet[next() % (sizeof(alphabet) - 1)]);
          break;
      }
      if (spec.empty()) {
        spec = ";";
      }
    }
    FaultPlan fp;
    try {
      fp = FaultPlan::Parse(spec);
      ++parsed;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse) << spec;
      ++rejected;
      continue;
    }
    // Whatever parsed must round-trip and must not break recovery: the run
    // either completes with a byte-identical output or (cpu-device faults)
    // throws the typed fault error.
    EXPECT_EQ(FaultPlan::Parse(fp.ToString()).ToString(), fp.ToString()) << spec;
    Executor ex(pm, soc);
    ex.SetFaultPlan(fp);
    try {
      const RunResult got = ex.Run(plan, &input);
      ASSERT_TRUE(got.output.has_value()) << spec;
      ExpectSameBytes(*want.output, *got.output);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kFault) << spec;
    }
  }
  // The mutator must exercise both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace ulayer
