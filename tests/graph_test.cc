#include "nn/graph.h"

#include <gtest/gtest.h>

namespace ulayer {
namespace {

TEST(GraphTest, ConvShapeInference) {
  Graph g;
  const int in = g.AddInput(Shape(1, 3, 224, 224));
  const int c = g.AddConv("conv1", in, 64, 7, 2, 3, true);
  EXPECT_EQ(g.node(c).out_shape, Shape(1, 64, 112, 112));
}

TEST(GraphTest, ValidConvVariants) {
  Graph g;
  const int in = g.AddInput(Shape(1, 8, 14, 14));
  EXPECT_EQ(g.node(g.AddConv("a", in, 16, 1, 1, 0, false)).out_shape, Shape(1, 16, 14, 14));
  EXPECT_EQ(g.node(g.AddConv("b", in, 16, 3, 1, 1, false)).out_shape, Shape(1, 16, 14, 14));
  EXPECT_EQ(g.node(g.AddConv("c", in, 16, 5, 1, 2, false)).out_shape, Shape(1, 16, 14, 14));
  EXPECT_EQ(g.node(g.AddConv("d", in, 16, 3, 2, 1, false)).out_shape, Shape(1, 16, 7, 7));
  EXPECT_EQ(g.node(g.AddConv("e", in, 16, 11, 4, 0, false)).out_shape, Shape(1, 16, 1, 1));
}

TEST(GraphTest, PoolShapeInferenceIncludingCeil) {
  Graph g;
  const int in = g.AddInput(Shape(1, 64, 112, 112));
  const int p1 = g.AddPool("p1", in, PoolKind::kMax, 3, 2, 0, /*ceil_mode=*/true);
  EXPECT_EQ(g.node(p1).out_shape, Shape(1, 64, 56, 56));
  const int p2 = g.AddPool("p2", in, PoolKind::kMax, 3, 2, 0, /*ceil_mode=*/false);
  EXPECT_EQ(g.node(p2).out_shape, Shape(1, 64, 55, 55));
}

TEST(GraphTest, FullyConnectedSpansInput) {
  Graph g;
  const int in = g.AddInput(Shape(1, 16, 6, 6));
  const int fc = g.AddFullyConnected("fc", in, 128, true);
  const Node& n = g.node(fc);
  EXPECT_EQ(n.out_shape, Shape(1, 128, 1, 1));
  EXPECT_EQ(n.desc.conv.kernel_h, 6);
  EXPECT_EQ(n.desc.conv.kernel_w, 6);
}

TEST(GraphTest, DepthwisePreservesChannels) {
  Graph g;
  const int in = g.AddInput(Shape(1, 32, 28, 28));
  const int dw = g.AddDepthwiseConv("dw", in, 3, 2, 1, true);
  EXPECT_EQ(g.node(dw).out_shape, Shape(1, 32, 14, 14));
  EXPECT_EQ(g.node(dw).desc.out_channels, 32);
}

TEST(GraphTest, ConcatSumsChannels) {
  Graph g;
  const int in = g.AddInput(Shape(1, 8, 14, 14));
  const int a = g.AddConv("a", in, 16, 1, 1, 0, true);
  const int b = g.AddConv("b", in, 24, 1, 1, 0, true);
  const int c = g.AddConcat("cat", {a, b});
  EXPECT_EQ(g.node(c).out_shape, Shape(1, 40, 14, 14));
}

TEST(GraphTest, ConsumersTracksFanOut) {
  Graph g;
  const int in = g.AddInput(Shape(1, 8, 14, 14));
  const int a = g.AddConv("a", in, 16, 1, 1, 0, true);
  const int b = g.AddConv("b", in, 24, 1, 1, 0, true);
  const int c = g.AddConcat("cat", {a, b});
  const auto consumers = g.Consumers(in);
  EXPECT_EQ(consumers.size(), 2u);
  EXPECT_EQ(g.Consumers(a), std::vector<int>{c});
  EXPECT_TRUE(g.Consumers(c).empty());
}

TEST(GraphTest, GlobalAvgPoolAndLrnAndSoftmaxPreserveShape) {
  Graph g;
  const int in = g.AddInput(Shape(1, 32, 7, 7));
  const int gap = g.AddGlobalAvgPool("gap", in);
  EXPECT_EQ(g.node(gap).out_shape, Shape(1, 32, 1, 1));
  const int lrn = g.AddLrn("lrn", in, LrnParams{});
  EXPECT_EQ(g.node(lrn).out_shape, g.node(in).out_shape);
  const int sm = g.AddSoftmax("sm", gap);
  EXPECT_EQ(g.node(sm).out_shape, g.node(gap).out_shape);
}

TEST(GraphTest, OutputIdIsLastAppended) {
  Graph g;
  const int in = g.AddInput(Shape(1, 1, 4, 4));
  const int c = g.AddConv("c", in, 2, 3, 1, 1, false);
  EXPECT_EQ(g.OutputId(), c);
  EXPECT_EQ(g.size(), 2);
}

TEST(GraphTest, LayerKindNamesAreStable) {
  EXPECT_EQ(LayerKindName(LayerKind::kConv), "conv");
  EXPECT_EQ(LayerKindName(LayerKind::kConcat), "concat");
  EXPECT_EQ(LayerKindName(LayerKind::kDepthwiseConv), "dwconv");
}

}  // namespace
}  // namespace ulayer
