// Tests for the multi-tenant serving layer (src/serve, DESIGN.md Section 14):
// deterministic trace generation, EDF/priority queueing, SLO-aware admission
// and shedding, batch assembly economics, byte-identical functional outputs
// across batch compositions and repeat runs, fault-degraded serving, and the
// executor single-flight guard the pooled lanes rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/executor.h"
#include "core/partitioner.h"
#include "core/predictor.h"
#include "fault/fault.h"
#include "serve/model_cache.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "serve/server.h"
#include "soc/timing.h"
#include "tensor/rng.h"
#include "trace/metrics.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

using serve::GenerateTrace;
using serve::Outcome;
using serve::Priority;
using serve::Request;
using serve::RequestQueue;
using serve::ServeReport;
using serve::TraceSpec;

Request MakeReq(int64_t id, double deadline, Priority p = Priority::kInteractive) {
  Request r;
  r.id = id;
  r.model = "lenet5";
  r.priority = p;
  r.arrival_us = 0.0;
  r.deadline_us = deadline;
  return r;
}

// --- Trace generation --------------------------------------------------------

TEST(TraceGenTest, DeterministicSortedDenseIds) {
  TraceSpec spec;
  spec.seed = 99;
  spec.num_requests = 50;
  spec.models = {"lenet5", "alexnet"};
  const std::vector<Request> a = GenerateTrace(spec);
  const std::vector<Request> b = GenerateTrace(spec);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<int64_t>(i));
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    EXPECT_EQ(a[i].input_seed, b[i].input_seed);
    EXPECT_GT(a[i].deadline_us, a[i].arrival_us);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
    }
  }
  // A different seed moves the arrivals.
  spec.seed = 100;
  const std::vector<Request> c = GenerateTrace(spec);
  bool any_diff = false;
  for (size_t i = 0; i < c.size(); ++i) {
    any_diff = any_diff || c[i].arrival_us != a[i].arrival_us;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TraceGenTest, RespectsClassMixAndModels) {
  TraceSpec spec;
  spec.num_requests = 200;
  spec.models = {"lenet5", "alexnet"};
  spec.interactive_fraction = 0.25;
  int interactive = 0;
  std::map<std::string, int> by_model;
  for (const Request& r : GenerateTrace(spec)) {
    interactive += r.priority == Priority::kInteractive ? 1 : 0;
    ++by_model[r.model];
  }
  EXPECT_GT(interactive, 20);
  EXPECT_LT(interactive, 90);  // ~50 expected at fraction 0.25.
  EXPECT_GT(by_model["lenet5"], 0);
  EXPECT_GT(by_model["alexnet"], 0);
}

// --- Request queue -----------------------------------------------------------

TEST(RequestQueueTest, EdfOrderWithinClassIdTiebreak) {
  RequestQueue q(8);
  ASSERT_TRUE(q.Push(MakeReq(3, 500.0)));
  ASSERT_TRUE(q.Push(MakeReq(1, 100.0)));
  ASSERT_TRUE(q.Push(MakeReq(2, 100.0)));
  EXPECT_EQ(q.PopHead().id, 1);  // Same deadline as 2: id breaks the tie.
  EXPECT_EQ(q.PopHead().id, 2);
  EXPECT_EQ(q.PopHead().id, 3);
}

TEST(RequestQueueTest, InteractiveClassPreemptsBatchHead) {
  RequestQueue q(8);
  ASSERT_TRUE(q.Push(MakeReq(0, 100.0, Priority::kBatch)));
  ASSERT_TRUE(q.Push(MakeReq(1, 900.0, Priority::kInteractive)));
  // The interactive request heads the queue despite its later deadline.
  EXPECT_EQ(q.Head().id, 1);
  EXPECT_EQ(q.HeadClassSize(), 1u);
  std::vector<Request> out;
  q.PopClassInto(4, out);  // Must not absorb the batch-class request.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 1);
  EXPECT_EQ(q.Head().id, 0);
}

TEST(RequestQueueTest, CapacitySharedAcrossClasses) {
  RequestQueue q(2);
  EXPECT_TRUE(q.Push(MakeReq(0, 1.0, Priority::kInteractive)));
  EXPECT_TRUE(q.Push(MakeReq(1, 1.0, Priority::kBatch)));
  EXPECT_FALSE(q.Push(MakeReq(2, 1.0, Priority::kInteractive)));
  EXPECT_EQ(q.size(), 2u);
}

// --- Model cache -------------------------------------------------------------

TEST(ModelCacheTest, BatchEntriesAndLargestFit) {
  serve::ModelCache::Options opts;
  opts.batch_sizes = {1, 2, 4, 8};
  opts.lanes = 2;
  serve::ModelCache cache(MakeExynos7420(), ExecConfig::ProcessorFriendly(), opts);
  cache.Register("lenet5");
  EXPECT_TRUE(cache.Has("lenet5"));
  EXPECT_EQ(cache.LargestBatchLE(1), 1);
  EXPECT_EQ(cache.LargestBatchLE(3), 2);
  EXPECT_EQ(cache.LargestBatchLE(7), 4);
  EXPECT_EQ(cache.LargestBatchLE(100), 8);

  // Batching amortizes weight traffic + launch overhead: a batch-8 execution
  // is far cheaper than eight batch-1 executions, and service time still
  // rises monotonically with batch size.
  double prev = 0.0;
  for (int b : opts.batch_sizes) {
    const double s = cache.ServiceUs("lenet5", b);
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_LT(cache.ServiceUs("lenet5", 8), 8.0 * cache.ServiceUs("lenet5", 1));
  EXPECT_NEAR(cache.UnitUs("lenet5"), cache.ServiceUs("lenet5", 8) / 8.0, 1e-9);
}

TEST(ModelCacheTest, NormalizesCpuThreadsForCanonicalTiming) {
  ExecConfig config = ExecConfig::ProcessorFriendly();
  config.cpu_threads = 3;
  serve::ModelCache cache(MakeExynos7420(), config, {});
  EXPECT_EQ(cache.config().cpu_threads, 0);
}

// --- Plan batch stamping (verifier P115) -------------------------------------

TEST(PlanBatchTest, VerifierRejectsBatchMismatchedPlan) {
  const TimingModel timing(MakeExynos7420());
  const ExecConfig config = ExecConfig::ProcessorFriendly();
  const Model m4 = serve::MakeZooModel("lenet5", 4);
  const LatencyPredictor predictor(timing, config, {&m4.graph});
  Plan plan = Partitioner(m4.graph, timing, config, predictor).Build();
  EXPECT_EQ(plan.batch, 4);
  EXPECT_TRUE(VerifyPlan(m4.graph, plan, config).ok());

  // The same plan against the batch-1 graph: split ratios were priced at
  // batch 4, so the verifier rejects the pairing.
  const Model m1 = serve::MakeZooModel("lenet5", 1);
  const Report report = VerifyPlan(m1.graph, plan, config);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(DiagCode::kPlanBatchMismatch));
}

// --- Serving: batching economics and SLO behavior ----------------------------

serve::ServerOptions SimOptions(std::vector<int> batch_sizes) {
  serve::ServerOptions opts;
  opts.cache.batch_sizes = std::move(batch_sizes);
  opts.cache.lanes = 2;
  opts.cache.functional = false;
  opts.queue_capacity = 64;
  return opts;
}

TraceSpec OverloadSpec(double service1, double load, int n = 400) {
  TraceSpec spec;
  spec.seed = 11;
  spec.num_requests = n;
  spec.duration_us = static_cast<double>(n) * service1 / load;
  spec.interactive_deadline_us = 10.0 * service1;
  spec.batch_deadline_us = 50.0 * service1;
  return spec;
}

TEST(ServerTest, BatchingDoublesThroughputAtOverload) {
  const SocSpec soc = MakeExynos7420();
  const ExecConfig config = ExecConfig::ProcessorFriendly();
  serve::Server batched(soc, config, SimOptions({1, 2, 4, 8}));
  serve::Server batch1(soc, config, SimOptions({1}));
  batched.RegisterModel("lenet5");
  batch1.RegisterModel("lenet5");

  const double service1 = batched.cache().ServiceUs("lenet5", 1);
  const std::vector<Request> trace = GenerateTrace(OverloadSpec(service1, 4.0));
  const ServeReport rb = batched.Run(trace);
  const ServeReport r1 = batch1.Run(trace);
  EXPECT_GT(rb.MeanBatchSize(), 2.0);
  EXPECT_GE(rb.ThroughputRps(), 2.0 * r1.ThroughputRps());
  EXPECT_GT(static_cast<double>(rb.completed), 1.5 * static_cast<double>(r1.completed));
}

TEST(ServerTest, AdmissionControlBoundsTailLatencyPastSaturation) {
  const SocSpec soc = MakeExynos7420();
  const ExecConfig config = ExecConfig::ProcessorFriendly();
  serve::Server with(soc, config, SimOptions({1, 2, 4, 8}));
  serve::ServerOptions no_admission = SimOptions({1, 2, 4, 8});
  no_admission.admission_control = false;
  no_admission.queue_capacity = 4096;  // Remove backpressure entirely.
  serve::Server without(soc, config, no_admission);
  with.RegisterModel("lenet5");
  without.RegisterModel("lenet5");

  const double service1 = with.cache().ServiceUs("lenet5", 1);
  const TraceSpec spec = OverloadSpec(service1, 8.0);
  const std::vector<Request> trace = GenerateTrace(spec);
  const ServeReport ra = with.Run(trace);
  const ServeReport rn = without.Run(trace);

  // Past saturation the controller sheds instead of queueing: the p99 of
  // admitted work stays within the largest SLO budget while the uncontrolled
  // server's tail grows with the backlog.
  EXPECT_GT(ra.shed, 0);
  EXPECT_LE(ra.LatencyQuantileUs(0.99), spec.batch_deadline_us);
  EXPECT_GT(rn.LatencyQuantileUs(0.99), ra.LatencyQuantileUs(0.99));
  // Shed outcomes are one of the admission/expiry reasons, never silent.
  for (const auto& c : ra.completions) {
    if (c.outcome != Outcome::kCompleted) {
      EXPECT_TRUE(c.outcome == Outcome::kShedQueueFull ||
                  c.outcome == Outcome::kShedDeadline || c.outcome == Outcome::kShedExpired);
    }
  }
}

TEST(ServerTest, RunIsRepeatableAndResetsSchedulerState) {
  const SocSpec soc = MakeExynos7420();
  serve::Server server(soc, ExecConfig::ProcessorFriendly(), SimOptions({1, 2, 4}));
  server.RegisterModel("lenet5");
  const double service1 = server.cache().ServiceUs("lenet5", 1);
  const std::vector<Request> trace = GenerateTrace(OverloadSpec(service1, 4.0, 120));
  const ServeReport a = server.Run(trace);
  const ServeReport b = server.Run(trace);
  EXPECT_EQ(a.BatchLog(), b.BatchLog());
  EXPECT_EQ(a.CompletionLog(), b.CompletionLog());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan_us, b.makespan_us);
}

TEST(ServerTest, RejectsUnsortedTraceAndUnknownModel) {
  serve::Server server(MakeExynos7420(), ExecConfig::ProcessorFriendly(), SimOptions({1}));
  server.RegisterModel("lenet5");
  std::vector<Request> bad = {MakeReq(0, 10.0), MakeReq(1, 10.0)};
  bad[0].arrival_us = 5.0;
  bad[1].arrival_us = 1.0;
  EXPECT_THROW(server.Run(bad), Error);
  std::vector<Request> unknown = {MakeReq(0, 10.0)};
  unknown[0].model = "alexnet";
  EXPECT_THROW(server.Run(unknown), Error);
}

TEST(ServerTest, MetricsRegistryWiring) {
  serve::Server server(MakeExynos7420(), ExecConfig::ProcessorFriendly(),
                       SimOptions({1, 2, 4}));
  server.RegisterModel("lenet5");
  const double service1 = server.cache().ServiceUs("lenet5", 1);
  trace::MetricsRegistry registry;
  const ServeReport rep = server.Run(GenerateTrace(OverloadSpec(service1, 4.0, 100)), &registry);
  const std::string text = registry.ToString();
  EXPECT_NE(text.find("serve.requests"), std::string::npos);
  EXPECT_NE(text.find("serve.completed"), std::string::npos);
  EXPECT_NE(text.find("serve.latency_us"), std::string::npos);
  EXPECT_NE(text.find("serve.batch_size"), std::string::npos);
  EXPECT_NE(text.find("serve.queue_depth.lenet5"), std::string::npos);
  if (rep.shed > 0) {
    EXPECT_NE(text.find("serve.shed-"), std::string::npos);
  }
}

// --- Functional serving: byte-identical outputs ------------------------------

serve::ServerOptions FunctionalOptions(std::vector<int> batch_sizes) {
  serve::ServerOptions opts;
  opts.cache.batch_sizes = std::move(batch_sizes);
  opts.cache.lanes = 2;
  opts.cache.functional = true;
  opts.queue_capacity = 64;
  opts.admission_control = false;  // Nothing sheds: compare every request.
  return opts;
}

std::map<int64_t, uint64_t> DigestsById(const ServeReport& rep) {
  std::map<int64_t, uint64_t> out;
  for (const auto& c : rep.completions) {
    if (c.outcome == Outcome::kCompleted) {
      out[c.id] = c.output_digest;
    }
  }
  return out;
}

TraceSpec FunctionalSpec(double service1, int n) {
  TraceSpec spec;
  spec.seed = 5;
  spec.num_requests = n;
  spec.duration_us = static_cast<double>(n) * service1 / 4.0;
  // Deadlines far beyond the makespan so every request completes in both
  // serving configurations.
  spec.interactive_deadline_us = 1e4 * service1;
  spec.batch_deadline_us = 1e4 * service1;
  return spec;
}

TEST(ServerFunctionalTest, BatchedOutputsMatchSequentialByteForByte) {
  const SocSpec soc = MakeExynos7420();
  const ExecConfig config = ExecConfig::AllF32();
  serve::Server batched(soc, config, FunctionalOptions({1, 2, 4}));
  serve::Server batch1(soc, config, FunctionalOptions({1}));
  batched.RegisterModel("lenet5");
  batch1.RegisterModel("lenet5");

  const double service1 = batched.cache().ServiceUs("lenet5", 1);
  const std::vector<Request> trace = GenerateTrace(FunctionalSpec(service1, 24));
  const ServeReport rb = batched.Run(trace);
  const ServeReport r1 = batch1.Run(trace);
  ASSERT_EQ(rb.completed, 24);
  ASSERT_EQ(r1.completed, 24);
  EXPECT_GT(rb.MeanBatchSize(), 1.0);  // Batching actually engaged.

  const auto db = DigestsById(rb);
  const auto d1 = DigestsById(r1);
  ASSERT_EQ(db.size(), d1.size());
  for (const auto& [id, digest] : db) {
    EXPECT_NE(digest, 0u);
    EXPECT_EQ(digest, d1.at(id)) << "request " << id
                                 << ": batched output differs from sequential";
  }
}

TEST(ServerFunctionalTest, ProcessorFriendlyConfigServes) {
  const SocSpec soc = MakeExynos7420();
  serve::Server server(soc, ExecConfig::ProcessorFriendly(), FunctionalOptions({1, 2, 4}));
  server.RegisterModel("lenet5");
  const double service1 = server.cache().ServiceUs("lenet5", 1);
  const ServeReport a = server.Run(GenerateTrace(FunctionalSpec(service1, 12)));
  const ServeReport b = server.Run(GenerateTrace(FunctionalSpec(service1, 12)));
  ASSERT_EQ(a.completed, 12);
  for (const auto& c : a.completions) {
    EXPECT_NE(c.output_digest, 0u);
  }
  // Repeat runs are byte-identical, digests included.
  EXPECT_EQ(a.CompletionLog(), b.CompletionLog());
  EXPECT_EQ(a.BatchLog(), b.BatchLog());
}

TEST(ServerFunctionalTest, FaultDegradedServingKeepsOutputsCorrect) {
  const SocSpec soc = MakeExynos7420();
  const ExecConfig config = ExecConfig::AllF32();
  serve::Server clean(soc, config, FunctionalOptions({1, 2, 4}));
  serve::Server faulty(soc, config, FunctionalOptions({1, 2, 4}));
  clean.RegisterModel("lenet5");
  faulty.RegisterModel("lenet5");
  // lenet5's plan is all-CPU at batch 1-4, so throttle the CPU: a thermal
  // slowdown stretches every kernel body without touching the math.
  faulty.SetFaultPlan(fault::FaultPlan::Parse("cpu.kernel=slow:4.0"));

  const double service1 = clean.cache().ServiceUs("lenet5", 1);
  const std::vector<Request> trace = GenerateTrace(FunctionalSpec(service1, 16));
  const ServeReport rc = clean.Run(trace);
  const ServeReport rf = faulty.Run(trace);
  ASSERT_EQ(rc.completed, 16);
  ASSERT_EQ(rf.completed, 16);
  // The throttle stretches service times (throughput degrades) ...
  EXPECT_GT(rf.makespan_us, rc.makespan_us);
  // ... but never correctness: every request's output bytes are unchanged.
  const auto dc = DigestsById(rc);
  const auto df = DigestsById(rf);
  for (const auto& [id, digest] : dc) {
    EXPECT_EQ(digest, df.at(id));
  }
}

// --- Executor single-flight guard (used by the lane pool) --------------------

TEST(SingleFlightTest, GuardClearsAfterThrowingRun) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const ExecConfig config = ExecConfig::AllF32();
  const PreparedModel pm(m, config);
  const TimingModel timing{MakeExynos7420()};
  const LatencyPredictor predictor(timing, config, {&m.graph});
  const Plan plan = Partitioner(m.graph, timing, config, predictor).Build();
  Executor exec(pm, MakeExynos7420());

  // A CPU enqueue failure is unrecoverable (no fallback device below the
  // CPU): the run throws mid-flight.
  exec.SetFaultPlan(fault::FaultPlan::Parse("cpu.kernel@call:1=enqueue-failed"));
  Tensor in(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(in, 42);
  RunResult r;
  EXPECT_THROW(exec.RunInto(plan, &in, r), Error);
  // The guard (and the arena/timelines) must be reset: a fault-free run on
  // the same executor succeeds and matches a fresh executor byte for byte.
  exec.SetFaultPlan(fault::FaultPlan{});
  exec.RunInto(plan, &in, r);
  Executor fresh(pm, MakeExynos7420());
  const RunResult expect = fresh.Run(plan, &in);
  EXPECT_EQ(r.latency_us, expect.latency_us);
  ASSERT_TRUE(r.output.has_value() && expect.output.has_value());
  EXPECT_EQ(serve::Fnv1a64(r.output->raw(), static_cast<size_t>(r.output->SizeBytes())),
            serve::Fnv1a64(expect.output->raw(),
                           static_cast<size_t>(expect.output->SizeBytes())));
}

TEST(SingleFlightTest, ConcurrentSecondRunIsRejected) {
  // Two threads race into one executor: the atomic guard admits one run at a
  // time and rejects a concurrent entry with kInvalidArgument. The workload
  // is sized so one functional run spans many scheduler timeslices (tens of
  // milliseconds) — even on a single-core host the other thread gets
  // scheduled mid-run and collides. Both threads retry until a collision and
  // a completion have each been observed (in practice the first round).
  Model m = serve::MakeZooModel("alexnet", 4, 64);
  m.MaterializeWeights();
  const ExecConfig config = ExecConfig::AllF32();
  const PreparedModel pm(m, config);
  const TimingModel timing{MakeExynos7420()};
  const LatencyPredictor predictor(timing, config, {&m.graph});
  const Plan plan = Partitioner(m.graph, timing, config, predictor).Build();
  Executor exec(pm, MakeExynos7420());

  Tensor in(m.graph.nodes()[0].out_shape, DType::kF32);
  FillUniform(in, 7);
  std::atomic<bool> go{false};
  std::atomic<int> ready{0};
  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  auto attempt = [&](RunResult& r) {
    ready.fetch_add(1);
    while (!go.load()) {
    }
    for (int k = 0; k < 50 && (completed.load() == 0 || rejected.load() == 0); ++k) {
      try {
        exec.RunInto(plan, &in, r);
        completed.fetch_add(1);
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
        rejected.fetch_add(1);
      }
    }
  };
  RunResult r1;
  RunResult r2;
  std::thread t1(attempt, std::ref(r1));
  std::thread t2(attempt, std::ref(r2));
  while (ready.load() < 2) {
  }
  go.store(true);
  t1.join();
  t2.join();
  EXPECT_GE(completed.load(), 1);
  EXPECT_GE(rejected.load(), 1);
  // Rejections left the executor usable.
  RunResult r3;
  exec.RunInto(plan, &in, r3);
  EXPECT_GT(r3.latency_us, 0.0);
}

}  // namespace
}  // namespace ulayer
