// Scratch-arena / memory-planning tests (DESIGN.md Section 9):
//  - ScratchArena unit behavior: alignment, reset reuse, overflow growth.
//  - PackBuffers liveness packing: overlap disjointness, reuse, alignment.
//  - Kernel equivalence: prepare-time caches (row sums, requant multipliers,
//    F16 operands) must be byte-identical to the per-call fallbacks.
//  - Zero steady-state heap allocations inside warmed kernels (global
//    operator new counting, single-threaded so the serial ParallelFor path
//    makes the count deterministic).
//  - Zoo regression: the legacy per-call-allocation executor path
//    (ExecConfig::scratch_arena = false) and the arena path must produce
//    byte-identical outputs across storage dtypes, plan kinds, and thread
//    counts.
#include "memory/arena.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "common/error.h"
#include "core/executor.h"
#include "core/prepared.h"
#include "kernels/conv.h"
#include "kernels/gemm.h"
#include "models/model.h"
#include "parallel/thread_pool.h"
#include "quant/quantize.h"
#include "tensor/rng.h"

// --- Global allocation counting ---------------------------------------------
// Replacing the global allocation functions lets tests assert that a code
// region performs no heap allocation. Counting is gated so gtest's own
// bookkeeping does not pollute the numbers.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<int64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAllocAligned(std::size_t n, std::size_t align) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t padded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded == 0 ? align : padded);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAllocAligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAllocAligned(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace ulayer {
namespace {

using memory::BufferPlan;
using memory::BufferRequest;
using memory::PackBuffers;
using memory::ScratchArena;

class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { parallel::SetCpuThreads(n); }
  ~ScopedThreads() { parallel::SetCpuThreads(0); }
};

class ScopedAllocCount {
 public:
  ScopedAllocCount() {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
  }
  ~ScopedAllocCount() { g_count_allocs.store(false, std::memory_order_relaxed); }
  int64_t count() const { return g_alloc_count.load(std::memory_order_relaxed); }
};

// --- ScratchArena ------------------------------------------------------------

TEST(ScratchArenaTest, AllocationsAreCacheLineAligned) {
  ScratchArena arena(1024);
  for (const size_t n : {1u, 3u, 64u, 100u, 129u}) {
    void* p = arena.Alloc(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % ScratchArena::kAlignment, 0u) << n;
  }
}

TEST(ScratchArenaTest, ResetReusesTheSameBlock) {
  ScratchArena arena(4096);
  void* first = arena.Alloc(1000);
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  // Identical allocation pattern lands on identical addresses: the arena is
  // a bump pointer over one stable block.
  EXPECT_EQ(arena.Alloc(1000), first);
  EXPECT_EQ(arena.overflow_count(), 0);
}

TEST(ScratchArenaTest, UsedTracksAlignedConsumption) {
  ScratchArena arena(4096);
  arena.Alloc(1);
  EXPECT_EQ(arena.used(), ScratchArena::kAlignment);
  arena.Alloc(65);
  EXPECT_EQ(arena.used(), 3 * ScratchArena::kAlignment);
}

TEST(ScratchArenaTest, OverflowFallsBackAndResetCoalesces) {
  ScratchArena arena(128);
  void* a = arena.Alloc(128);
  void* b = arena.Alloc(4096);  // Does not fit: dedicated overflow block.
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.overflow_count(), 1);
  EXPECT_GE(arena.used(), 128u + 4096u);
  std::memset(b, 0xAB, 4096);  // Overflow memory must be writable.

  // Reset regrows the main block to the high-water mark: the same pattern
  // now fits in-block.
  arena.Reset();
  EXPECT_GE(arena.capacity(), 128u + 4096u);
  arena.Alloc(128);
  arena.Alloc(4096);
  EXPECT_EQ(arena.overflow_count(), 1) << "second pass must not overflow";
}

TEST(ScratchArenaTest, ZeroByteAllocationIsValid) {
  ScratchArena arena(64);
  EXPECT_NE(arena.Alloc(0), nullptr);
}

TEST(ScratchArenaTest, HighWaterIsLifetimeMax) {
  ScratchArena arena(1024);
  arena.Alloc(512);
  arena.Reset();
  arena.Alloc(64);
  EXPECT_EQ(arena.high_water(), 512u);
}

TEST(ScratchArenaTest, ResetToRewindsWhilePreservingEarlierBuffers) {
  ScratchArena arena(4096);
  uint8_t* staged = arena.AllocN<uint8_t>(256);
  std::memset(staged, 0x5A, 256);
  const ScratchArena::Mark mark = arena.MarkPoint();
  const size_t used_at_mark = arena.used();

  // Per-slice scratch allocated after the mark is recycled by ResetTo...
  void* slice1 = arena.Alloc(1024);
  ASSERT_NE(slice1, nullptr);
  arena.ResetTo(mark);
  EXPECT_EQ(arena.used(), used_at_mark);
  // ...so an identical post-mark pattern lands on identical addresses.
  EXPECT_EQ(arena.Alloc(1024), slice1);
  arena.ResetTo(mark);

  // The staged buffer below the mark survived both rewinds intact.
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(staged[i], 0x5A) << i;
  }
  EXPECT_EQ(arena.overflow_count(), 0);
}

TEST(ScratchArenaTest, ResetToReleasesPostMarkOverflowOnly) {
  ScratchArena arena(256);
  uint8_t* pre = arena.AllocN<uint8_t>(4096);  // Overflows before the mark.
  std::memset(pre, 0xC3, 4096);
  EXPECT_EQ(arena.overflow_count(), 1);
  const ScratchArena::Mark mark = arena.MarkPoint();
  const size_t used_at_mark = arena.used();

  // Overflow after the mark is discarded by ResetTo; overflow before the
  // mark must keep its block (pointers below the mark stay valid).
  void* post = arena.Alloc(8192);
  ASSERT_NE(post, nullptr);
  EXPECT_EQ(arena.overflow_count(), 2);
  arena.ResetTo(mark);
  EXPECT_EQ(arena.used(), used_at_mark);
  for (int i = 0; i < 4096; ++i) {
    ASSERT_EQ(pre[i], 0xC3) << i;
  }

  // ResetTo never regrows the main block; coalescing waits for full Reset().
  EXPECT_LT(arena.capacity(), 4096u);
  arena.Reset();
  EXPECT_GE(arena.capacity(), arena.high_water());
}

TEST(ScratchArenaTest, MarkAtZeroBehavesLikeReset) {
  ScratchArena arena(1024);
  const ScratchArena::Mark mark = arena.MarkPoint();
  void* a = arena.Alloc(512);
  arena.ResetTo(mark);
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.Alloc(512), a);
}

// --- PackBuffers -------------------------------------------------------------

// Two requests with overlapping live intervals must occupy disjoint byte
// ranges of the pool.
bool Disjoint(const BufferPlan& plan, const std::vector<BufferRequest>& reqs, size_t i,
              size_t j) {
  const int64_t ai = plan.offsets[i], bi = ai + reqs[i].bytes;
  const int64_t aj = plan.offsets[j], bj = aj + reqs[j].bytes;
  return bi <= aj || bj <= ai;
}

bool LiveOverlap(const BufferRequest& a, const BufferRequest& b) {
  return a.live_begin <= b.live_end && b.live_begin <= a.live_end;
}

TEST(PackBuffersTest, OverlappingLivenessGetsDisjointRanges) {
  const std::vector<BufferRequest> reqs = {
      {100, 0, 2}, {200, 1, 3}, {50, 2, 2}, {300, 3, 5}, {100, 4, 6}, {64, 0, 6},
  };
  const BufferPlan plan = PackBuffers(reqs);
  ASSERT_EQ(plan.offsets.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(plan.offsets[i] % static_cast<int64_t>(ScratchArena::kAlignment), 0) << i;
    EXPECT_LE(plan.offsets[i] + reqs[i].bytes, plan.pool_bytes) << i;
    for (size_t j = i + 1; j < reqs.size(); ++j) {
      if (LiveOverlap(reqs[i], reqs[j]) && reqs[i].bytes > 0 && reqs[j].bytes > 0) {
        EXPECT_TRUE(Disjoint(plan, reqs, i, j)) << i << " vs " << j;
      }
    }
  }
}

TEST(PackBuffersTest, DisjointLivenessSharesMemory) {
  // A simple chain a -> b -> c: a dies when b is produced, so c can reuse
  // a's bytes. The pool must be smaller than the sum of all buffers.
  const std::vector<BufferRequest> reqs = {{1000, 0, 1}, {1000, 1, 2}, {1000, 2, 3}};
  const BufferPlan plan = PackBuffers(reqs);
  EXPECT_LT(plan.pool_bytes, 3000);
  EXPECT_TRUE(Disjoint(plan, reqs, 0, 1));
  EXPECT_TRUE(Disjoint(plan, reqs, 1, 2));
}

TEST(PackBuffersTest, EmptyAndZeroByteRequests) {
  EXPECT_EQ(PackBuffers({}).pool_bytes, 0);
  const BufferPlan plan = PackBuffers({{0, 0, 5}, {128, 0, 5}});
  EXPECT_EQ(plan.offsets.size(), 2u);
  EXPECT_GE(plan.pool_bytes, 128);
}

// --- Kernel-cache equivalence ------------------------------------------------

struct QU8ConvFixture {
  Conv2DParams p;
  Tensor in_q, w_q, bias_i32, bias_f32;
  RequantScale rs;
  std::vector<int32_t> rowsum;
  std::vector<Half> w16, b16;

  explicit QU8ConvFixture(bool relu = true) {
    p.kernel_h = p.kernel_w = 3;
    p.pad_h = p.pad_w = 1;
    p.relu = relu;
    Tensor in(Shape(1, 4, 10, 10), DType::kF32);
    Tensor w(Shape(8, 4, 3, 3), DType::kF32);
    bias_f32 = Tensor(Shape(1, 8, 1, 1), DType::kF32);
    FillUniform(in, 21, -1.0f, 1.0f);
    FillUniform(w, 22, -0.4f, 0.4f);
    FillUniform(bias_f32, 23, -0.2f, 0.2f);
    const QuantParams in_qp = ChooseQuantParams(-1.0f, 1.0f);
    const QuantParams w_qp = ChooseQuantParams(-0.4f, 0.4f);
    in_q = QuantizeTensor(in, in_qp);
    w_q = QuantizeTensor(w, w_qp);
    bias_i32 = Tensor(bias_f32.shape(), DType::kInt32);
    for (int64_t i = 0; i < bias_f32.NumElements(); ++i) {
      bias_i32.Data<int32_t>()[i] = static_cast<int32_t>(
          std::lround(bias_f32.Data<float>()[i] / (in_qp.scale * w_qp.scale)));
    }
    // Prepare-time caches, built exactly as PreparedModel builds them.
    const QuantParams out_qp = ChooseQuantParams(-2.0f, 2.0f);
    rs = ComputeRequantScale(static_cast<double>(in_qp.scale) *
                             static_cast<double>(w_qp.scale) /
                             static_cast<double>(out_qp.scale));
    out_scale = out_qp;
    const int64_t k = w_q.shape().c * w_q.shape().h * w_q.shape().w;
    rowsum.resize(static_cast<size_t>(w_q.shape().n));
    for (int64_t o = 0; o < w_q.shape().n; ++o) {
      int32_t raw = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        raw += static_cast<int32_t>(w_q.Data<uint8_t>()[o * k + kk]);
      }
      rowsum[static_cast<size_t>(o)] = raw;
    }
    w16.resize(static_cast<size_t>(w_q.NumElements()));
    for (int64_t i = 0; i < w_q.NumElements(); ++i) {
      w16[static_cast<size_t>(i)] = Half(w_qp.Dequantize(w_q.Data<uint8_t>()[i]));
    }
    b16.resize(static_cast<size_t>(bias_f32.NumElements()));
    for (int64_t i = 0; i < bias_f32.NumElements(); ++i) {
      b16[static_cast<size_t>(i)] = Half(bias_f32.Data<float>()[i]);
    }
  }

  Tensor MakeOut() const {
    const Shape& is = in_q.shape();
    Tensor out(Shape(is.n, w_q.shape().n, p.OutH(static_cast<int>(is.h)),
                     p.OutW(static_cast<int>(is.w))),
               DType::kQUInt8);
    out.set_quant_params(out_scale.scale, out_scale.zero_point);
    return out;
  }

  ConvAux FullAux(ScratchArena* arena) {
    ConvAux aux;
    aux.scratch = arena;
    aux.requant = &rs;
    aux.filter_rowsum = rowsum.data();
    aux.filters_f16 = w16.data();
    aux.bias_f16 = b16.data();
    return aux;
  }

  QuantParams out_scale;
};

TEST(KernelCacheTest, GemmQU8RowSumMatchesOnTheFly) {
  const int64_t m = 7, n = 50, k = 30;
  std::vector<uint8_t> a(static_cast<size_t>(m * k)), b(static_cast<size_t>(k * n));
  std::vector<int32_t> bias(static_cast<size_t>(m));
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<uint8_t>((i * 37 + 11) % 256);
  for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<uint8_t>((i * 53 + 5) % 256);
  for (size_t i = 0; i < bias.size(); ++i) bias[i] = static_cast<int32_t>(i) * 91 - 200;
  std::vector<int32_t> rowsum(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    int32_t raw = 0;
    for (int64_t kk = 0; kk < k; ++kk) raw += a[static_cast<size_t>(i * k + kk)];
    rowsum[static_cast<size_t>(i)] = raw;
  }
  const RequantScale rs = ComputeRequantScale(0.0037);
  std::vector<uint8_t> c1(static_cast<size_t>(m * n)), c2(static_cast<size_t>(m * n));
  GemmQU8(a.data(), 121, b.data(), 7, c1.data(), 13, rs, m, n, k, bias.data(), true);
  GemmQU8(a.data(), 121, b.data(), 7, c2.data(), 13, rs, m, n, k, bias.data(), true,
          rowsum.data());
  EXPECT_EQ(std::memcmp(c1.data(), c2.data(), c1.size()), 0);
}

TEST(KernelCacheTest, ConvQU8AuxMatchesFallback) {
  QU8ConvFixture f;
  Tensor plain = f.MakeOut(), cached = f.MakeOut();
  Conv2DQU8(f.in_q, f.w_q, f.bias_i32, f.p, plain);
  ScratchArena arena;
  const ConvAux aux = f.FullAux(&arena);
  Conv2DQU8(f.in_q, f.w_q, f.bias_i32, f.p, cached, 0, -1, aux);
  EXPECT_EQ(std::memcmp(plain.raw(), cached.raw(), static_cast<size_t>(plain.SizeBytes())), 0);
}

TEST(KernelCacheTest, ConvQU8ViaF16AuxMatchesFallback) {
  QU8ConvFixture f;
  Tensor plain = f.MakeOut(), cached = f.MakeOut();
  Conv2DQU8ViaF16(f.in_q, f.w_q, f.bias_f32, f.p, plain);
  ScratchArena arena;
  const ConvAux aux = f.FullAux(&arena);
  Conv2DQU8ViaF16(f.in_q, f.w_q, f.bias_f32, f.p, cached, 0, -1, aux);
  EXPECT_EQ(std::memcmp(plain.raw(), cached.raw(), static_cast<size_t>(plain.SizeBytes())), 0);
}

TEST(KernelCacheTest, ConvQU8ViaF16NoBiasSkipsStaging) {
  QU8ConvFixture f;
  const Tensor no_bias;
  Tensor plain = f.MakeOut(), cached = f.MakeOut();
  Conv2DQU8ViaF16(f.in_q, f.w_q, no_bias, f.p, plain);
  ScratchArena arena;
  ConvAux aux = f.FullAux(&arena);
  aux.bias_f16 = nullptr;
  Conv2DQU8ViaF16(f.in_q, f.w_q, no_bias, f.p, cached, 0, -1, aux);
  EXPECT_EQ(std::memcmp(plain.raw(), cached.raw(), static_cast<size_t>(plain.SizeBytes())), 0);
}

// --- Zero steady-state allocations -------------------------------------------

TEST(AllocationCountTest, WarmedConvKernelsAllocateNothing) {
  // Single-threaded: ParallelFor takes the serial inline path, so the
  // allocation count is deterministic. The arena is sized by the same
  // prepare-time dry-run helper the executor uses, then warmed once.
  ScopedThreads threads(1);
  QU8ConvFixture f;
  ScratchArena arena(static_cast<size_t>(Conv2DScratchBytes(
      DType::kQUInt8, DType::kF16, f.in_q.shape(), f.w_q.shape(), f.p)));
  ConvAux aux = f.FullAux(&arena);
  Tensor out = f.MakeOut();

  // Warm up both paths (first calls may touch lazily initialized state).
  Conv2DQU8(f.in_q, f.w_q, f.bias_i32, f.p, out, 0, -1, aux);
  arena.Reset();
  Conv2DQU8ViaF16(f.in_q, f.w_q, f.bias_f32, f.p, out, 0, -1, aux);
  arena.Reset();

  {
    ScopedAllocCount counter;
    Conv2DQU8(f.in_q, f.w_q, f.bias_i32, f.p, out, 0, -1, aux);
    arena.Reset();
    Conv2DQU8ViaF16(f.in_q, f.w_q, f.bias_f32, f.p, out, 0, -1, aux);
    arena.Reset();
    EXPECT_EQ(counter.count(), 0)
        << "steady-state conv kernels must not touch the heap";
  }
  EXPECT_EQ(arena.overflow_count(), 0)
      << "dry-run sizing must cover the kernels' scratch requests";
}

// --- Zoo regression: legacy path vs arena path -------------------------------

Tensor RunFixedPlan(const Model& m, const ExecConfig& config, const Plan& plan,
                    const std::vector<Tensor>& calib, const Tensor& input) {
  PreparedModel pm(m, config);
  if (config.storage == DType::kQUInt8) {
    pm.Calibrate(calib);
  }
  Executor ex(pm, MakeExynos7420());
  RunResult r = ex.Run(plan, &input);
  EXPECT_TRUE(r.output.has_value());
  return std::move(*r.output);
}

Plan MakeHalfSplitPlan(const Graph& g) {
  Plan plan = MakeSingleProcessorPlan(g, ProcKind::kCpu);
  for (const Node& n : g.nodes()) {
    if (n.desc.kind == LayerKind::kInput || n.desc.kind == LayerKind::kSoftmax ||
        n.desc.kind == LayerKind::kConcat || n.out_shape.c < 2) {
      continue;
    }
    NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    a.kind = StepKind::kCooperative;
    a.cpu_fraction = 0.5;
  }
  return plan;
}

void ExpectArenaMatchesLegacy(Model m, const Shape& in_shape, const ExecConfig& base_config) {
  m.MaterializeWeights();
  std::vector<Tensor> calib;
  for (int i = 0; i < 2; ++i) {
    Tensor t(in_shape, DType::kF32);
    FillUniform(t, 8200 + static_cast<uint64_t>(i), -1.0f, 1.0f);
    calib.push_back(std::move(t));
  }
  Tensor input(in_shape, DType::kF32);
  FillUniform(input, 8300, -1.0f, 1.0f);

  const std::vector<Plan> plans = {MakeSingleProcessorPlan(m.graph, ProcKind::kCpu),
                                   MakeSingleProcessorPlan(m.graph, ProcKind::kGpu),
                                   MakeHalfSplitPlan(m.graph)};
  for (size_t pi = 0; pi < plans.size(); ++pi) {
    for (const int threads : {1, 4}) {
      ExecConfig cfg = base_config;
      cfg.cpu_threads = threads;
      cfg.scratch_arena = false;
      const Tensor legacy = RunFixedPlan(m, cfg, plans[pi], calib, input);
      cfg.scratch_arena = true;
      const Tensor arena = RunFixedPlan(m, cfg, plans[pi], calib, input);
      parallel::SetCpuThreads(0);

      ASSERT_EQ(legacy.dtype(), arena.dtype()) << m.name;
      ASSERT_EQ(legacy.shape(), arena.shape()) << m.name;
      const size_t bytes =
          static_cast<size_t>(legacy.NumElements() * DTypeSize(legacy.dtype()));
      EXPECT_EQ(std::memcmp(legacy.raw(), arena.raw(), bytes), 0)
          << m.name << " plan#" << pi << " threads=" << threads
          << ": arena path output differs from the legacy allocation path";
    }
  }
}

TEST(ArenaRegressionTest, LeNetF32) {
  ExpectArenaMatchesLegacy(MakeLeNet5(), Shape(1, 1, 28, 28), ExecConfig::AllF32());
}

TEST(ArenaRegressionTest, LeNetF16) {
  ExpectArenaMatchesLegacy(MakeLeNet5(), Shape(1, 1, 28, 28), ExecConfig::AllF16());
}

TEST(ArenaRegressionTest, LeNetAllQU8) {
  ExpectArenaMatchesLegacy(MakeLeNet5(), Shape(1, 1, 28, 28), ExecConfig::AllQU8());
}

TEST(ArenaRegressionTest, LeNetProcessorFriendly) {
  ExpectArenaMatchesLegacy(MakeLeNet5(), Shape(1, 1, 28, 28),
                           ExecConfig::ProcessorFriendly());
}

TEST(ArenaRegressionTest, LeNetPerChannel) {
  ExecConfig cfg = ExecConfig::AllQU8();
  cfg.per_channel_weights = true;
  ExpectArenaMatchesLegacy(MakeLeNet5(), Shape(1, 1, 28, 28), cfg);
}

TEST(ArenaRegressionTest, SqueezeNetProcessorFriendly) {
  ExpectArenaMatchesLegacy(MakeSqueezeNetV11(1, 64), Shape(1, 3, 64, 64),
                           ExecConfig::ProcessorFriendly());
}

TEST(ArenaRegressionTest, MobileNetAllQU8) {
  // Depthwise layers exercise the per-tensor requant cache and the cached
  // F16 weights in the depthwise via-F16 kernel.
  ExpectArenaMatchesLegacy(MakeMobileNetV1(1, 64), Shape(1, 3, 64, 64),
                           ExecConfig::ProcessorFriendly());
}

// Repeated runs on one executor must keep reusing the same plan and pool
// (outputs stable, no re-planning artifacts).
TEST(ArenaRegressionTest, RepeatedRunsAreStable) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  const Shape in_shape(1, 1, 28, 28);
  std::vector<Tensor> calib;
  Tensor t(in_shape, DType::kF32);
  FillUniform(t, 8400, -1.0f, 1.0f);
  calib.push_back(std::move(t));
  Tensor input(in_shape, DType::kF32);
  FillUniform(input, 8500, -1.0f, 1.0f);

  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  pm.Calibrate(calib);
  Executor ex(pm, MakeExynos7420());
  const Plan plan = MakeHalfSplitPlan(m.graph);
  RunResult first = ex.Run(plan, &input);
  ASSERT_TRUE(first.output.has_value());
  for (int i = 0; i < 3; ++i) {
    RunResult again = ex.Run(plan, &input);
    ASSERT_TRUE(again.output.has_value());
    EXPECT_EQ(std::memcmp(first.output->raw(), again.output->raw(),
                          static_cast<size_t>(first.output->SizeBytes())),
              0);
  }
  // The returned output must be detached from the executor's pool: mutating
  // it does not corrupt later runs.
  first.output->Zero();
  RunResult after = ex.Run(plan, &input);
  EXPECT_NE(std::memcmp(first.output->raw(), after.output->raw(),
                        static_cast<size_t>(after.output->SizeBytes())),
            0);
}

// Calibrate must reject degenerate scales instead of invoking UB in lround.
TEST(CalibrateGuardTest, ZeroScaleBiasThrows) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  PreparedModel pm(m, ExecConfig::AllQU8());
  // An all-zero calibration input produces a zero activation range on the
  // input node -> in_scale * w_scale under the first conv becomes denormal
  // or zero, which previously sent lround to UB.
  std::vector<Tensor> calib;
  Tensor z(Shape(1, 1, 28, 28), DType::kF32);
  z.Zero();
  calib.push_back(std::move(z));
  try {
    pm.Calibrate(calib);
    // Some quantizers clamp the range away from zero; if calibration
    // succeeded the scales were representable and no guard applies.
    SUCCEED();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kQuantization);
    SUCCEED();  // The guard fired instead of UB.
  }
}

// A mid-run throw must leave the arena and activation pool coherent: the
// abandoned run's partially written activations cannot bleed into the next
// run's output (DESIGN.md Section 10 exception safety, arena edition).
TEST(ArenaTest, ArenaStaysCoherentAfterMidRunThrow) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  Tensor input(Shape(1, 1, 28, 28), DType::kF32);
  FillUniform(input, 6400, -1.0f, 1.0f);

  ExecConfig cfg = ExecConfig::AllF32();
  cfg.scratch_arena = true;
  cfg.fault_cpu_fallback = false;  // Let the fault escape mid-graph.
  cfg.fault_max_retries = 0;
  PreparedModel pm(m, cfg);
  const SocSpec soc = MakeExynos7420();
  const Plan plan = MakeHalfSplitPlan(m.graph);

  Executor ex(pm, soc);
  // Fail a GPU slice deep enough into the graph that several activation
  // buffers are already written when the run aborts.
  ex.SetFaultPlan(fault::FaultPlan::Parse("gpu.kernel@call:3=enqueue-failed"));
  EXPECT_THROW(ex.Run(plan, &input), Error);

  ex.SetFaultPlan(fault::FaultPlan{});
  const RunResult recovered = ex.Run(plan, &input);
  Executor fresh(pm, soc);
  const RunResult want = fresh.Run(plan, &input);
  ASSERT_TRUE(recovered.output.has_value());
  ASSERT_TRUE(want.output.has_value());
  ASSERT_EQ(recovered.output->SizeBytes(), want.output->SizeBytes());
  EXPECT_EQ(std::memcmp(recovered.output->raw(), want.output->raw(),
                        static_cast<size_t>(want.output->SizeBytes())),
            0);
  EXPECT_DOUBLE_EQ(recovered.latency_us, want.latency_us);
}

// --- Zero steady-state allocations in Run() ----------------------------------

// A warmed executor's timing-only RunInto must never touch the heap — for an
// all-cooperative plan, with a fault injector firing (retries, backoff,
// fallback), and with trace recording enabled. FaultInjector::ResetRun
// rewinds the RNG and event log at the top of every run, so repeated runs
// replay the identical fault trace and the warm-up runs size every vector.
TEST(AllocationCountTest, SteadyStateRunIntoAllocatesNothing) {
  ScopedThreads threads(1);
  Model m = MakeLeNet5();
  m.MaterializeWeights();

  for (const bool tracing : {false, true}) {
    ExecConfig cfg = ExecConfig::AllF32();
    cfg.cpu_threads = 1;
    cfg.verify = false;  // VerifyPlan builds a fresh Report (allocates).
    cfg.trace = tracing;
    PreparedModel pm(m, cfg);
    Executor ex(pm, MakeExynos7420());
    const Plan plan = MakeHalfSplitPlan(m.graph);
    ex.SetFaultPlan(fault::FaultPlan::Parse(
        "seed=11;gpu.any@prob:0.4=timeout:100;gpu.kernel@call:2=enqueue-failed;"
        "gpu.kernel@node:3=slow:1.7"));

    RunResult r;
    ex.RunInto(plan, nullptr, r);  // Warm-up: all capacity growth lands here.
    ex.RunInto(plan, nullptr, r);
    ASSERT_GT(r.degradation.retries + r.degradation.fallbacks, 0)
        << "the spec must inject faults for this test to mean anything";
    {
      ScopedAllocCount counter;
      ex.RunInto(plan, nullptr, r);
      EXPECT_EQ(counter.count(), 0)
          << "steady-state Run() must not allocate (trace=" << tracing << ")";
    }
    EXPECT_EQ(r.run_trace.enabled, tracing);
    if (tracing) {
      EXPECT_FALSE(r.run_trace.spans.empty());
    }
  }
}

}  // namespace
}  // namespace ulayer
