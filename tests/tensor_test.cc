#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/rng.h"

namespace ulayer {
namespace {

TEST(ShapeTest, NumElementsAndOffsets) {
  const Shape s(2, 3, 4, 5);
  EXPECT_EQ(s.NumElements(), 120);
  EXPECT_EQ(s.Offset(0, 0, 0, 0), 0);
  EXPECT_EQ(s.Offset(0, 0, 0, 1), 1);
  EXPECT_EQ(s.Offset(0, 0, 1, 0), 5);
  EXPECT_EQ(s.Offset(0, 1, 0, 0), 20);
  EXPECT_EQ(s.Offset(1, 0, 0, 0), 60);
  EXPECT_EQ(s.Offset(1, 2, 3, 4), 119);
}

TEST(ShapeTest, OffsetsAreDenseRowMajor) {
  const Shape s(2, 2, 3, 3);
  int64_t expect = 0;
  for (int64_t n = 0; n < s.n; ++n) {
    for (int64_t c = 0; c < s.c; ++c) {
      for (int64_t h = 0; h < s.h; ++h) {
        for (int64_t w = 0; w < s.w; ++w) {
          EXPECT_EQ(s.Offset(n, c, h, w), expect++);
        }
      }
    }
  }
}

TEST(ShapeTest, EqualityAndValidity) {
  EXPECT_EQ(Shape(1, 2, 3, 4), Shape(1, 2, 3, 4));
  EXPECT_NE(Shape(1, 2, 3, 4), Shape(1, 2, 4, 3));
  EXPECT_TRUE(Shape(1, 1, 1, 1).IsValid());
  EXPECT_FALSE(Shape(1, 0, 1, 1).IsValid());
}

TEST(ShapeTest, ToString) { EXPECT_EQ(Shape(1, 64, 56, 56).ToString(), "1x64x56x56"); }

TEST(DTypeTest, Sizes) {
  EXPECT_EQ(DTypeSize(DType::kF32), 4);
  EXPECT_EQ(DTypeSize(DType::kF16), 2);
  EXPECT_EQ(DTypeSize(DType::kQUInt8), 1);
  EXPECT_EQ(DTypeSize(DType::kInt32), 4);
}

TEST(TensorTest, AllocatesBySizeAndDType) {
  Tensor t(Shape(1, 3, 8, 8), DType::kF32);
  EXPECT_EQ(t.NumElements(), 192);
  EXPECT_EQ(t.SizeBytes(), 768);
  Tensor q(Shape(1, 3, 8, 8), DType::kQUInt8);
  EXPECT_EQ(q.SizeBytes(), 192);
}

TEST(TensorTest, ZeroFills) {
  Tensor t(Shape(1, 1, 2, 2), DType::kF32);
  FillUniform(t, 1);
  t.Zero();
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_EQ(t.Data<float>()[i], 0.0f);
  }
}

TEST(TensorTest, QuantMetadataRoundTrips) {
  Tensor t(Shape(1, 1, 1, 1), DType::kQUInt8);
  t.set_quant_params(0.125f, 37);
  EXPECT_FLOAT_EQ(t.scale(), 0.125f);
  EXPECT_EQ(t.zero_point(), 37);
}

TEST(TensorTest, FillUniformIsDeterministicAndInRange) {
  Tensor a(Shape(1, 4, 16, 16), DType::kF32);
  Tensor b(Shape(1, 4, 16, 16), DType::kF32);
  FillUniform(a, 42, -2.0f, 3.0f);
  FillUniform(b, 42, -2.0f, 3.0f);
  EXPECT_EQ(MaxAbsDiff(a, b), 0.0f);
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    EXPECT_GE(a.Data<float>()[i], -2.0f);
    EXPECT_LT(a.Data<float>()[i], 3.0f);
  }
}

TEST(TensorTest, DifferentSeedsDiffer) {
  Tensor a(Shape(1, 1, 8, 8), DType::kF32);
  Tensor b(Shape(1, 1, 8, 8), DType::kF32);
  FillUniform(a, 1);
  FillUniform(b, 2);
  EXPECT_GT(MaxAbsDiff(a, b), 0.0f);
}

TEST(TensorTest, DiffMetrics) {
  Tensor a(Shape(1, 1, 1, 4), DType::kF32);
  Tensor b(Shape(1, 1, 1, 4), DType::kF32);
  for (int i = 0; i < 4; ++i) {
    a.Data<float>()[i] = static_cast<float>(i);
    b.Data<float>()[i] = static_cast<float>(i) + (i == 2 ? 0.5f : 0.0f);
  }
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 0.5f);
  EXPECT_NEAR(RmsDiff(a, b), 0.25f, 1e-6f);
}

TEST(RngTest, UniformBelowBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(10), 10u);
  }
}

}  // namespace
}  // namespace ulayer
