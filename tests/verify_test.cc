// Tests for the static Graph/Plan verifiers (src/verify): happy paths over
// the whole model zoo, one distinct diagnostic per malformed-plan fixture,
// corrupt-graph detection, sync-count coherence with the executor, and
// quantization-parameter sanity.
#include <gtest/gtest.h>

#include <set>

#include "baselines/baselines.h"
#include "core/runtime.h"
#include "io/io.h"
#include "tensor/rng.h"
#include "verify/verify.h"

namespace ulayer {
namespace {

std::vector<Model> Zoo() {
  std::vector<Model> zoo;
  zoo.push_back(MakeLeNet5());
  zoo.push_back(MakeAlexNet());
  zoo.push_back(MakeVgg16());
  zoo.push_back(MakeGoogLeNet());
  zoo.push_back(MakeSqueezeNetV11());
  zoo.push_back(MakeMobileNetV1());
  zoo.push_back(MakeResNet18());
  zoo.push_back(MakeResNet50());
  zoo.push_back(MakeInceptionV3());
  return zoo;
}

int FirstConv(const Graph& g) {
  for (const Node& n : g.nodes()) {
    if (n.desc.kind == LayerKind::kConv) {
      return n.id;
    }
  }
  return -1;
}

// --- Happy paths ------------------------------------------------------------

TEST(VerifyHappyPath, ZooGraphsAreClean) {
  for (const Model& m : Zoo()) {
    const Report r = VerifyGraph(m.graph);
    EXPECT_TRUE(r.ok()) << m.name << "\n" << r.ToString();
    EXPECT_EQ(r.warning_count(), 0) << m.name;
  }
}

TEST(VerifyHappyPath, PartitionerPlansVerifyClean) {
  for (const Model& m : Zoo()) {
    for (const SocSpec& soc : {MakeExynos7420(), MakeExynos7880()}) {
      for (const ExecConfig& cfg : {ExecConfig::AllF32(), ExecConfig::ProcessorFriendly()}) {
        ULayerRuntime::Options opt;
        opt.config = cfg;
        // The runtime itself verifies (cfg.verify defaults to true); a clean
        // construction already proves the plan passes. Check the report
        // explicitly anyway so a failure prints the diagnostics.
        ULayerRuntime rt(m, soc, opt);
        const Report r = VerifyPlan(m.graph, rt.plan(), cfg);
        EXPECT_TRUE(r.ok()) << m.name << " on " << soc.name << "\n" << r.ToString();
      }
    }
  }
}

TEST(VerifyHappyPath, BaselinePlansVerifyClean) {
  const SocSpec soc = MakeExynos7420();
  const TimingModel timing(soc);
  const ExecConfig cfg = ExecConfig::AllF32();
  for (const Model& m : Zoo()) {
    for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
      const Report r = VerifyPlan(m.graph, MakeSingleProcessorPlan(m.graph, proc), cfg);
      EXPECT_TRUE(r.ok()) << m.name << " single-" << ProcKindName(proc) << "\n" << r.ToString();
    }
    const LatencyPredictor predictor(timing, cfg, {&m.graph});
    const Report r =
        VerifyPlan(m.graph, MakeLayerToProcessorPlan(m.graph, timing, cfg, predictor), cfg);
    EXPECT_TRUE(r.ok()) << m.name << " l2p\n" << r.ToString();
  }
}

// --- Malformed-plan fixtures: one distinct code each ------------------------

class MalformedPlan : public ::testing::Test {
 protected:
  MalformedPlan() : model_(MakeGoogLeNet()), soc_(MakeExynos7420()), rt_(model_, soc_) {}

  const Graph& graph() const { return model_.graph; }
  Plan BasePlan() const { return rt_.plan(); }

  Model model_;
  SocSpec soc_;
  ULayerRuntime rt_;
  ExecConfig cfg_ = ExecConfig::AllF32();
};

TEST_F(MalformedPlan, OverlappingChannelSlices) {
  Plan plan = BasePlan();
  const int id = FirstConv(graph());
  ASSERT_GE(id, 0);
  const int64_t c = graph().node(id).out_shape.c;
  ASSERT_GE(c, 2);
  NodeAssignment& a = plan.nodes[static_cast<size_t>(id)];
  a = NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.5};
  a.cpu_slice = ChannelRange{0, c / 2 + 1};  // Overlaps the GPU slice by one.
  a.gpu_slice = ChannelRange{c / 2, c};
  const Report r = VerifyPlan(graph(), plan, cfg_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.Has(DiagCode::kSliceOverlap)) << r.ToString();
  EXPECT_EQ(DiagCodeId(DiagCode::kSliceOverlap), "P106");
}

TEST_F(MalformedPlan, SplitRatiosNotSummingToOne) {
  Plan plan = BasePlan();
  const int id = FirstConv(graph());
  ASSERT_GE(id, 0);
  NodeAssignment& a = plan.nodes[static_cast<size_t>(id)];
  a = NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.5};
  a.gpu_fraction = 0.75;  // 0.5 + 0.75 != 1.
  const Report r = VerifyPlan(graph(), plan, cfg_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.Has(DiagCode::kSplitRatioNotUnity)) << r.ToString();
  EXPECT_EQ(DiagCodeId(DiagCode::kSplitRatioNotUnity), "P103");
}

TEST_F(MalformedPlan, UnassignedBranch) {
  Plan plan = BasePlan();
  ASSERT_FALSE(plan.branch_plans.empty()) << "GoogLeNet should have branch groups";
  ASSERT_FALSE(plan.branch_plans[0].assignment.empty());
  plan.branch_plans[0].assignment.pop_back();  // One branch loses its processor.
  const Report r = VerifyPlan(graph(), plan, cfg_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.Has(DiagCode::kBranchAssignmentMissing)) << r.ToString();
  EXPECT_EQ(DiagCodeId(DiagCode::kBranchAssignmentMissing), "P110");
}

TEST_F(MalformedPlan, ZeroQuantizationScale) {
  Report r;
  CheckQuantParams(QuantParams{0.0f, 10}, /*node=*/3, "activation", r);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.Has(DiagCode::kQuantScaleInvalid)) << r.ToString();
  EXPECT_EQ(DiagCodeId(DiagCode::kQuantScaleInvalid), "Q301");
}

// The acceptance requirement: each seeded malformed fixture maps to its own
// diagnostic code.
TEST_F(MalformedPlan, FixtureCodesAreDistinct) {
  const std::set<std::string> ids = {
      DiagCodeId(DiagCode::kSliceOverlap), DiagCodeId(DiagCode::kSplitRatioNotUnity),
      DiagCodeId(DiagCode::kBranchAssignmentMissing), DiagCodeId(DiagCode::kQuantScaleInvalid)};
  EXPECT_EQ(ids.size(), 4u);
}

TEST_F(MalformedPlan, MoreMalformations) {
  const int id = FirstConv(graph());
  ASSERT_GE(id, 0);
  const int64_t c = graph().node(id).out_shape.c;

  {  // Plan size mismatch.
    Plan plan = BasePlan();
    plan.nodes.pop_back();
    const Report r = VerifyPlan(graph(), plan, cfg_);
    EXPECT_TRUE(r.Has(DiagCode::kPlanSizeMismatch)) << r.ToString();
  }
  {  // Split fraction outside [0, 1].
    Plan plan = BasePlan();
    plan.nodes[static_cast<size_t>(id)] =
        NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 1.5};
    const Report r = VerifyPlan(graph(), plan, cfg_);
    EXPECT_TRUE(r.Has(DiagCode::kBadSplitFraction)) << r.ToString();
  }
  {  // Cooperative on a non-splittable layer (softmax output).
    Plan plan = BasePlan();
    const int out = graph().OutputId();
    ASSERT_EQ(graph().node(out).desc.kind, LayerKind::kSoftmax);
    plan.nodes[static_cast<size_t>(out)] =
        NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.5};
    const Report r = VerifyPlan(graph(), plan, cfg_);
    EXPECT_TRUE(r.Has(DiagCode::kCoopNotSplittable)) << r.ToString();
  }
  {  // Explicit slices leaving a gap.
    Plan plan = BasePlan();
    NodeAssignment& a = plan.nodes[static_cast<size_t>(id)];
    a = NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.5};
    a.cpu_slice = ChannelRange{0, 1};
    a.gpu_slice = ChannelRange{c - 1, c};  // Channels [1, c-1) computed by no one.
    const Report r = VerifyPlan(graph(), plan, cfg_);
    EXPECT_TRUE(r.Has(DiagCode::kSliceGap)) << r.ToString();
  }
  {  // Explicit slice out of range.
    Plan plan = BasePlan();
    NodeAssignment& a = plan.nodes[static_cast<size_t>(id)];
    a = NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.5};
    a.cpu_slice = ChannelRange{0, c};
    a.gpu_slice = ChannelRange{c, c + 4};
    const Report r = VerifyPlan(graph(), plan, cfg_);
    EXPECT_TRUE(r.Has(DiagCode::kSliceOutOfRange)) << r.ToString();
  }
  {  // Branch-claimed node planned as a plain single step.
    Plan plan = BasePlan();
    ASSERT_FALSE(plan.branch_plans.empty());
    const int member = plan.branch_plans[0].group.branches[0][0];
    plan.nodes[static_cast<size_t>(member)] = NodeAssignment{StepKind::kSingle, ProcKind::kCpu};
    const Report r = VerifyPlan(graph(), plan, cfg_);
    EXPECT_TRUE(r.Has(DiagCode::kBranchNodeNotMarked)) << r.ToString();
  }
  {  // Degenerate split is a warning, not an error.
    Plan plan = BasePlan();
    plan.nodes[static_cast<size_t>(id)] =
        NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 1.0};
    const Report r = VerifyPlan(graph(), plan, cfg_);
    EXPECT_TRUE(r.ok()) << r.ToString();
    EXPECT_TRUE(r.Has(DiagCode::kDegenerateSplit)) << r.ToString();
    EXPECT_GE(r.warning_count(), 1);
  }
  {  // QUInt8 compute on float storage is incoherent (Section 4).
    ExecConfig bad = ExecConfig::AllF32();
    bad.cpu_compute = DType::kQUInt8;
    const Report r = VerifyPlan(graph(), BasePlan(), bad);
    EXPECT_TRUE(r.Has(DiagCode::kConfigQu8OnFloat)) << r.ToString();
  }
  {  // kInt32 is an accumulator type, never a storage dtype.
    ExecConfig bad = ExecConfig::AllF32();
    bad.storage = DType::kInt32;
    const Report r = VerifyPlan(graph(), BasePlan(), bad);
    EXPECT_TRUE(r.Has(DiagCode::kConfigBadDType)) << r.ToString();
  }
  {  // Zero point outside [0, 255].
    Report r;
    CheckQuantParams(QuantParams{0.1f, 300}, 0, "activation", r);
    EXPECT_TRUE(r.Has(DiagCode::kQuantZeroPointRange)) << r.ToString();
  }
}

// --- The executor rejects malformed plans (ExecConfig::verify) --------------

TEST_F(MalformedPlan, ExecutorThrowsVerifyError) {
  Plan plan = BasePlan();
  const int id = FirstConv(graph());
  NodeAssignment& a = plan.nodes[static_cast<size_t>(id)];
  a = NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.5};
  a.gpu_fraction = 0.9;

  PreparedModel pm(model_, cfg_);
  Executor ex(pm, soc_);
  try {
    ex.Run(plan);
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_TRUE(e.report().Has(DiagCode::kSplitRatioNotUnity));
    EXPECT_NE(std::string(e.what()).find("P103"), std::string::npos) << e.what();
  }

  // With verification off the executor trusts the plan (measurement loops).
  ExecConfig off = cfg_;
  off.verify = false;
  PreparedModel pm_off(model_, off);
  Executor ex_off(pm_off, soc_);
  EXPECT_GT(ex_off.Run(plan).latency_us, 0.0);
}

// --- Corrupt graphs (built through the unchecked testing hook) --------------

Node MakeNode(int id, LayerKind kind, std::vector<int> inputs, const Shape& shape) {
  Node n;
  n.id = id;
  n.desc.kind = kind;
  n.desc.name = "n" + std::to_string(id);
  n.inputs = std::move(inputs);
  n.out_shape = shape;
  return n;
}

TEST(VerifyGraphErrors, EmptyGraph) {
  const Report r = VerifyGraph(Graph::UncheckedFromNodes({}));
  EXPECT_TRUE(r.Has(DiagCode::kGraphEmpty)) << r.ToString();
}

TEST(VerifyGraphErrors, FirstNodeNotInput) {
  Node n = MakeNode(0, LayerKind::kRelu, {}, Shape(1, 1, 1, 1));
  const Report r = VerifyGraph(Graph::UncheckedFromNodes({n}));
  EXPECT_TRUE(r.Has(DiagCode::kGraphNoInput)) << r.ToString();
}

TEST(VerifyGraphErrors, NodeIdMismatch) {
  Node in = MakeNode(0, LayerKind::kInput, {}, Shape(1, 1, 4, 4));
  Node relu = MakeNode(7, LayerKind::kRelu, {0}, Shape(1, 1, 4, 4));  // id != index.
  const Report r = VerifyGraph(Graph::UncheckedFromNodes({in, relu}));
  EXPECT_TRUE(r.Has(DiagCode::kNodeIdMismatch)) << r.ToString();
}

TEST(VerifyGraphErrors, EdgeOutOfRange) {
  Node in = MakeNode(0, LayerKind::kInput, {}, Shape(1, 1, 4, 4));
  Node relu = MakeNode(1, LayerKind::kRelu, {5}, Shape(1, 1, 4, 4));  // Forward edge.
  const Report r = VerifyGraph(Graph::UncheckedFromNodes({in, relu}));
  EXPECT_TRUE(r.Has(DiagCode::kEdgeOutOfRange)) << r.ToString();
}

TEST(VerifyGraphErrors, BadArity) {
  Node in = MakeNode(0, LayerKind::kInput, {}, Shape(1, 2, 4, 4));
  Node add = MakeNode(1, LayerKind::kEltwiseAdd, {0}, Shape(1, 2, 4, 4));  // Needs >= 2.
  const Report r = VerifyGraph(Graph::UncheckedFromNodes({in, add}));
  EXPECT_TRUE(r.Has(DiagCode::kBadArity)) << r.ToString();
}

TEST(VerifyGraphErrors, InvalidShape) {
  Node in = MakeNode(0, LayerKind::kInput, {}, Shape(1, 0, -3, 4));
  const Report r = VerifyGraph(Graph::UncheckedFromNodes({in}));
  EXPECT_TRUE(r.Has(DiagCode::kInvalidShape)) << r.ToString();
}

TEST(VerifyGraphErrors, StoredShapeDisagreesWithInference) {
  Node in = MakeNode(0, LayerKind::kInput, {}, Shape(1, 3, 8, 8));
  Node conv = MakeNode(1, LayerKind::kConv, {0}, Shape(1, 99, 8, 8));  // 99 != out_channels.
  conv.desc.out_channels = 16;
  conv.desc.conv = Conv2DParams{3, 3, 1, 1, 1, 1};
  const Report r = VerifyGraph(Graph::UncheckedFromNodes({in, conv}));
  EXPECT_TRUE(r.Has(DiagCode::kShapeMismatch)) << r.ToString();
}

TEST(VerifyGraphErrors, BadLayerParams) {
  Node in = MakeNode(0, LayerKind::kInput, {}, Shape(1, 3, 8, 8));
  Node conv = MakeNode(1, LayerKind::kConv, {0}, Shape(1, 16, 8, 8));
  conv.desc.out_channels = 16;
  conv.desc.conv = Conv2DParams{0, 3, 1, 1, 1, 1};  // kernel_h = 0.
  const Report r = VerifyGraph(Graph::UncheckedFromNodes({in, conv}));
  EXPECT_TRUE(r.Has(DiagCode::kBadLayerParams)) << r.ToString();
}

TEST(VerifyGraphErrors, EltwiseShapeMismatch) {
  Node in = MakeNode(0, LayerKind::kInput, {}, Shape(1, 2, 4, 4));
  Node relu = MakeNode(1, LayerKind::kRelu, {0}, Shape(1, 2, 4, 4));
  Node other = MakeNode(2, LayerKind::kInput, {}, Shape(1, 2, 2, 2));
  Node add = MakeNode(3, LayerKind::kEltwiseAdd, {1, 2}, Shape(1, 2, 4, 4));
  const Report r = VerifyGraph(Graph::UncheckedFromNodes({in, relu, other, add}));
  EXPECT_TRUE(r.Has(DiagCode::kEltwiseShapeMismatch)) << r.ToString();
}

TEST(VerifyGraphErrors, ConcatShapeMismatch) {
  Node in = MakeNode(0, LayerKind::kInput, {}, Shape(1, 2, 4, 4));
  Node other = MakeNode(1, LayerKind::kInput, {}, Shape(1, 2, 2, 2));
  Node cat = MakeNode(2, LayerKind::kConcat, {0, 1}, Shape(1, 4, 4, 4));
  const Report r = VerifyGraph(Graph::UncheckedFromNodes({in, other, cat}));
  EXPECT_TRUE(r.Has(DiagCode::kConcatShapeMismatch)) << r.ToString();
}

// Pooling splits *input* channels (Section 3.2): a cooperative pool step
// whose input channel count differs from its output channel count cannot
// mirror the split. Only constructible through the unchecked hook — the
// checked graph API always infers matching counts.
TEST(VerifyGraphErrors, CoopInputChannelMismatch) {
  Node in = MakeNode(0, LayerKind::kInput, {}, Shape(1, 8, 8, 8));
  Node pool = MakeNode(1, LayerKind::kPool, {0}, Shape(1, 4, 4, 4));  // 8 in, 4 out.
  pool.desc.pool = Pool2DParams{};
  const Graph g = Graph::UncheckedFromNodes({in, pool});
  Plan plan;
  plan.nodes.resize(2);
  plan.nodes[1] = NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, 0.5};
  const Report r = VerifyPlan(g, plan, ExecConfig::AllF32());
  EXPECT_TRUE(r.Has(DiagCode::kCoopInputChannelMismatch)) << r.ToString();
}

// --- Sync-count coherence ---------------------------------------------------

TEST(VerifySyncCount, MatchesExecutorOnZooPlans) {
  const ExecConfig cfg = ExecConfig::ProcessorFriendly();
  for (Model& m : Zoo()) {
    for (const SocSpec& soc : {MakeExynos7420(), MakeExynos7880()}) {
      ULayerRuntime::Options opt;
      opt.config = cfg;
      ULayerRuntime rt(m, soc, opt);
      EXPECT_EQ(rt.Run().sync_count, ExpectedSyncCount(m.graph, rt.plan(), cfg))
          << m.name << " on " << soc.name;
    }
  }
}

TEST(VerifySyncCount, MatchesExecutorOnBaselines) {
  const ExecConfig cfg = ExecConfig::AllF32();
  Model m = MakeGoogLeNet();
  const SocSpec soc = MakeExynos7420();
  PreparedModel pm(m, cfg);
  Executor ex(pm, soc);
  for (const ProcKind proc : {ProcKind::kCpu, ProcKind::kGpu}) {
    const Plan plan = MakeSingleProcessorPlan(m.graph, proc);
    EXPECT_EQ(ex.Run(plan).sync_count, ExpectedSyncCount(m.graph, plan, cfg))
        << ProcKindName(proc);
  }
}

// --- Quantization verification after calibration ----------------------------

TEST(VerifyQuant, CalibratedLeNetPassesAndRuns) {
  Model m = MakeLeNet5();
  m.MaterializeWeights();
  ULayerRuntime::Options opt;
  opt.config = ExecConfig::ProcessorFriendly();
  ULayerRuntime rt(m, MakeExynos7420(), opt);
  Tensor in(m.graph.node(0).out_shape, DType::kF32);
  FillUniform(in, 0x1234, -1.0f, 1.0f);
  rt.Calibrate({in});  // Throws VerifyError on bad scales.
  EXPECT_GT(rt.Run(&in).latency_us, 0.0);
}

TEST(VerifyQuant, ActivationSweepFlagsBadScales) {
  const Model m = MakeLeNet5();
  std::vector<QuantParams> act(static_cast<size_t>(m.graph.size()), QuantParams{0.05f, 128});
  EXPECT_TRUE(VerifyActivationQuantization(m.graph, act).ok());
  act[2].scale = -1.0f;
  act[3].zero_point = -7;
  const Report r = VerifyActivationQuantization(m.graph, act);
  EXPECT_TRUE(r.Has(DiagCode::kQuantScaleInvalid));
  EXPECT_TRUE(r.Has(DiagCode::kQuantZeroPointRange));
  EXPECT_EQ(r.error_count(), 2);
}

// --- Plan serialization round-trip through the verifier ---------------------

TEST(VerifyRoundTrip, PartitionerPlanSurvivesTextRoundTrip) {
  for (const Model& m : {MakeGoogLeNet(), MakeMobileNetV1()}) {
    const SocSpec soc = MakeExynos7420();
    ULayerRuntime rt(m, soc);
    const Plan& plan = rt.plan();
    const Plan parsed = PlanFromText(PlanToText(plan, m.graph), m.graph);
    const Report r = VerifyPlan(m.graph, parsed, ExecConfig::AllF32());
    EXPECT_TRUE(r.ok()) << m.name << "\n" << r.ToString();
    // The parsed plan must execute identically.
    PreparedModel pm(m, ExecConfig::AllF32());
    Executor ex(pm, soc);
    EXPECT_DOUBLE_EQ(ex.Run(parsed).latency_us, ex.Run(plan).latency_us) << m.name;
    EXPECT_EQ(ex.Run(parsed).sync_count, ex.Run(plan).sync_count) << m.name;
  }
}

}  // namespace
}  // namespace ulayer
