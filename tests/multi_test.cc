#include "multi/multi.h"

#include <gtest/gtest.h>
#include <cmath>


#include "models/model.h"

namespace ulayer::multi {
namespace {

TEST(MultiSocTest, PresetsHaveExpectedProcessors) {
  const MultiSoc two = MakeExynos7420Multi();
  ASSERT_EQ(two.procs.size(), 2u);
  EXPECT_EQ(two.procs[0].compute, DType::kQUInt8);  // CPU.
  EXPECT_EQ(two.procs[1].compute, DType::kF16);     // GPU.
  const MultiSoc three = MakeExynos7420WithNpu();
  ASSERT_EQ(three.procs.size(), 3u);
  EXPECT_EQ(three.procs[2].compute, DType::kQUInt8);  // NPU.
  EXPECT_GT(three.procs[2].spec.gmacs_qu8, three.procs[0].spec.gmacs_qu8);
}

TEST(MultiPartitionerTest, FractionsAlwaysSumToOne) {
  const Model m = MakeGoogLeNet();
  const MultiSoc soc = MakeExynos7420WithNpu();
  const MultiPlan plan = MultiPartitioner(m.graph, soc).Build();
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kInput) {
      continue;
    }
    const MultiAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    double sum = 0.0;
    for (double f : a.fractions) {
      EXPECT_GE(f, 0.0);
      sum += f;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << n.desc.name;
  }
}

TEST(MultiPartitionerTest, TwoProcConfigMatchesCoreShape) {
  // With exactly {CPU, GPU}, the N-way partitioner must still want to split
  // the big conv layers of VGG-16.
  const Model m = MakeVgg16();
  const MultiSoc soc = MakeExynos7420Multi();
  const MultiPlan plan = MultiPartitioner(m.graph, soc).Build();
  int split = 0;
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kConv &&
        plan.nodes[static_cast<size_t>(n.id)].ActiveProcs() > 1) {
      ++split;
    }
  }
  EXPECT_GT(split, 5);
}

TEST(MultiPartitionerTest, NpuAttractsQuantizedConvWork) {
  // The NPU's integer throughput dominates: big conv layers should give it
  // a slice (or run on it entirely).
  const Model m = MakeAlexNet();
  const MultiSoc soc = MakeExynos7420WithNpu();
  const MultiPlan plan = MultiPartitioner(m.graph, soc).Build();
  double npu_fraction_sum = 0.0;
  int convs = 0;
  for (const Node& n : m.graph.nodes()) {
    if (n.desc.kind == LayerKind::kConv) {
      npu_fraction_sum += plan.nodes[static_cast<size_t>(n.id)].fractions[2];
      ++convs;
    }
  }
  EXPECT_GT(npu_fraction_sum / convs, 0.2);
}

TEST(MultiExecutorTest, ThreeProcessorsBeatTwo) {
  // The paper's Section 8.3 claim: the key ideas hold with an NPU added —
  // more processors, lower latency.
  for (const Model& m : MakeEvaluationModels()) {
    const MultiSoc two = MakeExynos7420Multi();
    const MultiSoc three = MakeExynos7420WithNpu();
    const MultiRunResult r2 = MultiExecutor(m.graph, two).Run(
        MultiPartitioner(m.graph, two).Build());
    const MultiRunResult r3 = MultiExecutor(m.graph, three).Run(
        MultiPartitioner(m.graph, three).Build());
    EXPECT_LT(r3.latency_us, r2.latency_us) << m.name;
    EXPECT_GT(r3.latency_us, 0.0);
  }
}

TEST(MultiExecutorTest, SingleProcessorPlanUsesOnlyThatTimeline) {
  const Model m = MakeLeNet5();
  const MultiSoc soc = MakeExynos7420WithNpu();
  MultiPlan plan;
  plan.nodes.resize(static_cast<size_t>(m.graph.size()));
  for (MultiAssignment& a : plan.nodes) {
    a.fractions = {0.0, 0.0, 1.0};  // Everything on the NPU.
  }
  const MultiRunResult r = MultiExecutor(m.graph, soc).Run(plan);
  EXPECT_GT(r.busy_us[2], 0.0);
  EXPECT_DOUBLE_EQ(r.busy_us[0], 0.0);
  EXPECT_DOUBLE_EQ(r.busy_us[1], 0.0);
  EXPECT_EQ(r.sync_count, 0);
}

TEST(MultiExecutorTest, CooperativeNodesPaySyncs) {
  const Model m = MakeLeNet5();
  const MultiSoc soc = MakeExynos7420Multi();
  MultiPlan plan;
  plan.nodes.resize(static_cast<size_t>(m.graph.size()));
  for (MultiAssignment& a : plan.nodes) {
    a.fractions = {0.5, 0.5};
  }
  // Input node assignment is ignored; all others are cooperative.
  const MultiRunResult r = MultiExecutor(m.graph, soc).Run(plan);
  EXPECT_GT(r.sync_count, 0);
}

TEST(MultiExecutorTest, BranchDistributionSpreadsAcrossThreeProcs) {
  const Model m = MakeGoogLeNet();
  const MultiSoc soc = MakeExynos7420WithNpu();
  const MultiPlan plan = MultiPartitioner(m.graph, soc).Build();
  ASSERT_FALSE(plan.branch_plans.empty());
  // Branch mappings should parallelize across processors. (All three procs
  // are not required: when one branch dominates a module's makespan, a
  // two-processor mapping already achieves the optimum and the enumerator
  // breaks ties toward fewer processors/syncs.)
  int multi_proc_groups = 0;
  for (const MultiBranchPlan& bp : plan.branch_plans) {
    uint32_t used = 0;
    for (int p : bp.assignment) {
      used |= 1u << p;
    }
    multi_proc_groups += (used & (used - 1)) != 0 ? 1 : 0;  // >= 2 bits set.
  }
  EXPECT_GE(multi_proc_groups, 5);
}

TEST(MultiPartitionerTest, EstimateRespectsGridStep) {
  const Model m = MakeVgg16();
  const MultiSoc soc = MakeExynos7420Multi();
  MultiPartitioner::Options opts;
  opts.grid_step = 0.5;
  const MultiPlan plan = MultiPartitioner(m.graph, soc, opts).Build();
  for (const MultiAssignment& a : plan.nodes) {
    for (double f : a.fractions) {
      const double scaled = f / 0.5;
      EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
    }
  }
}

}  // namespace
}  // namespace ulayer::multi
