// Thread-pool / ParallelFor unit tests plus the determinism contract:
// multi-threaded functional inference must be byte-identical to
// cpu_threads = 1 (DESIGN.md "Parallel execution model").
#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/executor.h"
#include "core/prepared.h"
#include "models/model.h"
#include "tensor/rng.h"

namespace ulayer {
namespace {

// Restores the process-wide thread budget on scope exit so tests compose.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { parallel::SetCpuThreads(n); }
  ~ScopedThreads() { parallel::SetCpuThreads(0); }
};

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ScopedThreads threads(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel::ParallelFor(0, 1000, 7, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  // The determinism contract rests on this: the same (begin, end, grain)
  // must produce the same chunk set no matter how many threads execute it.
  auto chunks_with = [](int n) {
    ScopedThreads threads(n);
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> chunks;
    parallel::ParallelFor(3, 250, 9, [&](int64_t b, int64_t e) {
      const std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(b, e);
    });
    return chunks;
  };
  const auto one = chunks_with(1);
  EXPECT_EQ(one, chunks_with(2));
  EXPECT_EQ(one, chunks_with(8));
  // Chunks tile [3, 250) without gaps or overlaps.
  int64_t expect_begin = 3;
  for (const auto& [b, e] : one) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_LE(e - b, 9);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 250);
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ScopedThreads threads(4);
  bool called = false;
  parallel::ParallelFor(5, 5, 1, [&](int64_t, int64_t) { called = true; });
  parallel::ParallelFor(5, 3, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ExceptionsPropagateToCaller) {
  ScopedThreads threads(4);
  EXPECT_THROW(parallel::ParallelFor(0, 100, 1,
                                     [&](int64_t b, int64_t) {
                                       if (b == 50) {
                                         throw std::runtime_error("chunk failed");
                                       }
                                     }),
               std::runtime_error);
  // The pool must stay usable after a failed run.
  std::atomic<int64_t> sum{0};
  parallel::ParallelFor(0, 10, 1, [&](int64_t b, int64_t) { sum += b; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelForTest, NestedCallsRunSerially) {
  // A ParallelFor inside a worker chunk must not deadlock; it degrades to
  // the serial path.
  ScopedThreads threads(4);
  std::vector<std::atomic<int>> hits(64);
  parallel::ParallelFor(0, 8, 1, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      parallel::ParallelFor(0, 8, 1, [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) {
          hits[static_cast<size_t>(o * 8 + i)].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ThreadBudgetResolution) {
  parallel::SetCpuThreads(3);
  EXPECT_EQ(parallel::CpuThreads(), 3);
  parallel::SetCpuThreads(1);
  EXPECT_EQ(parallel::CpuThreads(), 1);
  parallel::SetCpuThreads(0);  // Automatic: env override or hardware concurrency.
  EXPECT_GE(parallel::CpuThreads(), 1);
}

TEST(ParallelForTest, GrainForOpsScalesInverselyWithWork) {
  EXPECT_GE(parallel::GrainForOps(1.0), 1);
  EXPECT_GT(parallel::GrainForOps(1.0), parallel::GrainForOps(1e6));
  EXPECT_EQ(parallel::GrainForOps(1e12), 1);
}

// --- Determinism across the model zoo --------------------------------------

// Runs `m` functionally under `config` with a fixed plan and returns the
// output tensor. The plan is fixed (not re-partitioned) because cpu_threads
// also scales the *simulated* CPU latency: letting the partitioner replan
// per thread count would legitimately change which processor computes what.
Tensor RunFixedPlan(const Model& m, const ExecConfig& config, const Plan& plan,
                    const std::vector<Tensor>& calib, const Tensor& input) {
  PreparedModel pm(m, config);
  if (config.storage == DType::kQUInt8) {
    pm.Calibrate(calib);
  }
  Executor ex(pm, MakeExynos7420());
  RunResult r = ex.Run(plan, &input);
  EXPECT_TRUE(r.output.has_value());
  return std::move(*r.output);
}

// Cooperative plan splitting every eligible node's channels 50:50, so both
// the CPU and (host-simulated) GPU kernel paths run under threading.
Plan MakeHalfSplitPlan(const Graph& g) {
  Plan plan = MakeSingleProcessorPlan(g, ProcKind::kCpu);
  for (const Node& n : g.nodes()) {
    if (n.desc.kind == LayerKind::kInput || n.desc.kind == LayerKind::kSoftmax ||
        n.desc.kind == LayerKind::kConcat || n.out_shape.c < 2) {
      continue;
    }
    NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    a.kind = StepKind::kCooperative;
    a.cpu_fraction = 0.5;
  }
  return plan;
}

void ExpectByteIdenticalAcrossThreadCounts(Model m, const Shape& in_shape,
                                           const ExecConfig& base_config) {
  m.MaterializeWeights();
  std::vector<Tensor> calib;
  for (int i = 0; i < 2; ++i) {
    Tensor t(in_shape, DType::kF32);
    FillUniform(t, 7000 + static_cast<uint64_t>(i), -1.0f, 1.0f);
    calib.push_back(std::move(t));
  }
  Tensor input(in_shape, DType::kF32);
  FillUniform(input, 7100, -1.0f, 1.0f);

  for (const Plan& plan :
       {MakeSingleProcessorPlan(m.graph, ProcKind::kCpu), MakeHalfSplitPlan(m.graph)}) {
    ExecConfig cfg = base_config;
    cfg.cpu_threads = 1;
    const Tensor serial = RunFixedPlan(m, cfg, plan, calib, input);
    cfg.cpu_threads = 4;
    const Tensor threaded = RunFixedPlan(m, cfg, plan, calib, input);
    parallel::SetCpuThreads(0);

    ASSERT_EQ(serial.dtype(), threaded.dtype()) << m.name;
    ASSERT_EQ(serial.shape(), threaded.shape()) << m.name;
    const size_t bytes =
        static_cast<size_t>(serial.NumElements() * DTypeSize(serial.dtype()));
    EXPECT_EQ(std::memcmp(serial.raw(), threaded.raw(), bytes), 0)
        << m.name << ": multi-threaded output differs from single-threaded";
  }
}

TEST(ParallelDeterminismTest, LeNetF32) {
  ExpectByteIdenticalAcrossThreadCounts(MakeLeNet5(), Shape(1, 1, 28, 28),
                                        ExecConfig::AllF32());
}

TEST(ParallelDeterminismTest, LeNetProcessorFriendly) {
  ExpectByteIdenticalAcrossThreadCounts(MakeLeNet5(), Shape(1, 1, 28, 28),
                                        ExecConfig::ProcessorFriendly());
}

TEST(ParallelDeterminismTest, SqueezeNetProcessorFriendly) {
  ExpectByteIdenticalAcrossThreadCounts(MakeSqueezeNetV11(1, 64), Shape(1, 3, 64, 64),
                                        ExecConfig::ProcessorFriendly());
}

TEST(ParallelDeterminismTest, MobileNetQU8) {
  ExpectByteIdenticalAcrossThreadCounts(MakeMobileNetV1(1, 64), Shape(1, 3, 64, 64),
                                        ExecConfig::AllQU8());
}

TEST(ParallelDeterminismTest, GoogLeNetF16) {
  ExpectByteIdenticalAcrossThreadCounts(MakeGoogLeNet(1, 64), Shape(1, 3, 64, 64),
                                        ExecConfig::AllF16());
}

}  // namespace
}  // namespace ulayer
