#!/usr/bin/env bash
# CI pipeline: warnings-as-errors build + tier-1 tests, a kernel-benchmark
# smoke run (regenerates BENCH_kernels.json and verifies the optimized
# kernels reproduce the legacy bytes), a forced-scalar rerun of the kernel
# and analysis suites (ULAYER_SIMD=scalar, exercising the scalar
# micro-kernels and dispatch fallback), ASan/UBSan test run, a TSan run of the
# threaded kernel/integration tests with a multi-thread CPU budget, a
# static memory-access analysis stage (ulayer_verify --analyze across the
# full zoo x config x partition-plan matrix, which must report zero A-series
# diagnostics), a fault-injection stage (fault_test plus the committed
# scripts/ci_faults.spec driven through ULAYER_FAULTS, under both
# sanitizers), a serving-layer stage (serving_bench --quick regenerating
# BENCH_serving.json under ASan, plus a cross-thread-count determinism diff
# of the ulayer_verify --serve-smoke batch/completion logs), an observability
# stage (traced runs exported as Chrome trace JSON, checked against the T4xx
# trace invariants, metrics written to
# BENCH_trace.json), a distributed-inference stage (net tests under both
# sanitizers, ulayer_verify --net-smoke clean and under the committed
# scripts/ci_net_faults.spec with the output digest diffed byte-identical
# across node counts, thread budgets and sanitizer builds, plus
# net_bench --quick regenerating BENCH_net.json), an adaptation-loop stage
# (adapt_test under ASan and TSan, the committed scripts/ci_adapt.spec
# throttle ramp driven through ulayer_verify --adapt with the output diffed
# byte-identical across CPU thread budgets, and adapt_bench --quick
# regenerating BENCH_adapt.json), a clang-format check and
# clang-tidy over src/, bench/
# and tools/ (both skipped with a notice when the binary is not installed —
# the reference container ships gcc only).
#
# Usage: scripts/ci.sh [--skip-sanitize] [--skip-tidy]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SANITIZE=0
SKIP_TIDY=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    --skip-tidy) SKIP_TIDY=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/13] warnings-as-errors build + tier-1 tests"
cmake -B build-werror -S . -DULAYER_WERROR=ON >/dev/null
cmake --build build-werror -j "$JOBS"
ctest --test-dir build-werror --output-on-failure -j "$JOBS"

echo "==> [2/13] kernel benchmark smoke (legacy-vs-optimized byte identity)"
# Fails if any optimized kernel's output differs from the embedded legacy
# replica; --quick keeps it to one iteration per case.
./build-werror/bench/kernel_bench --quick --out BENCH_kernels.json

echo "==> [3/13] forced-scalar ISA run (ULAYER_SIMD=scalar dispatch check)"
# Re-runs the kernel and analysis suites with SIMD dispatch forced to the
# scalar micro-kernels, then repeats the benchmark byte-identity smoke. The
# QU8/F32 paths are bit-exact across ISAs by contract, so everything that
# passed stage [1] must pass unchanged; this catches scalar-tail and
# dispatch-table regressions that AVX2-only CI would hide.
ULAYER_SIMD=scalar ctest --test-dir build-werror --output-on-failure -j "$JOBS" \
  -R 'gemm_test|conv_test|winograd_test|im2col_test|analysis_test|integration_test'
ULAYER_SIMD=scalar ./build-werror/bench/kernel_bench --quick \
  --out BENCH_kernels_scalar.json >/dev/null
rm -f BENCH_kernels_scalar.json

echo "==> [4/13] static memory-access analysis: zoo x config x plan matrix"
# The A5xx/A6xx/A7xx proofs must hold for every model, quantization config
# and partition strategy; ulayer_verify exits 1 on any A-series diagnostic.
for model in lenet5 alexnet vgg16 googlenet squeezenet mobilenet resnet18 resnet50 inceptionv3; do
  for config in pf f32; do
    for plan_flags in "" "--single cpu" "--single gpu" "--l2p"; do
      # shellcheck disable=SC2086
      ./build-werror/tools/ulayer_verify --model "$model" --config "$config" \
        $plan_flags --analyze >/dev/null
    done
  done
done
echo "analyzer matrix clean (9 models x 2 configs x 4 plans)"
if [ "$SKIP_SANITIZE" -eq 0 ]; then
  echo "==> [5/13] ASan + UBSan build + tests"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DULAYER_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "$JOBS"
  # halt_on_error is implied by -fno-sanitize-recover=all; detect leaks too.
  # A multi-thread CPU budget exercises the pool handoffs (and the arena /
  # activation-pool sharing across workers) under ASan even on 1-core CI.
  ULAYER_CPU_THREADS=4 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"

  echo "==> [6/13] TSan build + threaded kernel/integration tests"
  # TSan is incompatible with ASan, hence the separate build. Force a
  # multi-thread CPU budget so the pool's worker handoffs actually run, even
  # on single-core CI machines.
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DULAYER_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  ULAYER_CPU_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'parallel_test|gemm_test|conv_test|pool_test|elementwise_test|winograd_test|quantize_test|integration_test|executor_test|prepared_test|arena_test|fault_test|analysis_test|serve_test'

  echo "==> [7/13] fault injection under ASan + TSan (scripts/ci_faults.spec)"
  # fault_test (its specs are embedded in the tests) runs under both
  # sanitizers with a multi-thread CPU budget; the committed deterministic
  # spec is then driven through the sanitizer-built ulayer_verify fault
  # simulation, and two runs must print the identical DegradationReport.
  FAULT_SPEC="$(grep -v '^#' scripts/ci_faults.spec | tr -d '[:space:]')"
  ULAYER_CPU_THREADS=4 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan --output-on-failure -R 'fault_test'
  ULAYER_CPU_THREADS=4 \
    ctest --test-dir build-tsan --output-on-failure -R 'fault_test'
  ULAYER_CPU_THREADS=4 ASAN_OPTIONS=detect_leaks=1 \
    ./build-asan/tools/ulayer_verify --model googlenet --config pf \
    --faults "$FAULT_SPEC" > fault_report_a.txt
  ULAYER_CPU_THREADS=4 \
    ./build-tsan/tools/ulayer_verify --model googlenet --config pf \
    --faults "$FAULT_SPEC" > fault_report_b.txt
  diff fault_report_a.txt fault_report_b.txt
  rm -f fault_report_a.txt fault_report_b.txt
else
  echo "==> [5/13] sanitizers skipped (--skip-sanitize)"
  echo "==> [6/13] TSan skipped (--skip-sanitize)"
  echo "==> [7/13] fault injection skipped (--skip-sanitize)"
fi

echo "==> [8/13] serving layer: bench smoke + cross-thread determinism"
# The serving bench replays deterministic request traces through the
# multi-tenant server (batched vs batch=1) and writes BENCH_serving.json;
# under sanitizers it runs from the ASan build. The --serve-smoke output
# (batch composition, execution order and functional output digests) must be
# byte-identical across CPU thread budgets.
if [ "$SKIP_SANITIZE" -eq 0 ]; then
  SERVE_BENCH=./build-asan/bench/serving_bench
  SERVE_TOOL=./build-asan/tools/ulayer_verify
else
  SERVE_BENCH=./build-werror/bench/serving_bench
  SERVE_TOOL=./build-werror/tools/ulayer_verify
fi
ASAN_OPTIONS=detect_leaks=1 "$SERVE_BENCH" --quick --out BENCH_serving.json
ULAYER_CPU_THREADS=1 ASAN_OPTIONS=detect_leaks=1 "$SERVE_TOOL" --serve-smoke > serve_smoke_t1.txt
ULAYER_CPU_THREADS=4 ASAN_OPTIONS=detect_leaks=1 "$SERVE_TOOL" --serve-smoke > serve_smoke_t4.txt
diff serve_smoke_t1.txt serve_smoke_t4.txt
rm -f serve_smoke_t1.txt serve_smoke_t4.txt

echo "==> [9/13] observability: trace export + invariant check + metrics"
# Traced runs of one zoo model — clean and under the committed fault spec —
# exported as Chrome trace JSON and checked against the T4xx trace
# invariants (ulayer_verify exits 1 when they fail); the aggregated metrics
# registry lands in BENCH_trace.json at the repo root. Uses the ASan build
# when sanitizers are on, so the whole recording/export path runs
# instrumented.
FAULT_SPEC="$(grep -v '^#' scripts/ci_faults.spec | tr -d '[:space:]')"
if [ "$SKIP_SANITIZE" -eq 0 ]; then
  TRACE_TOOL=./build-asan/tools/ulayer_verify
else
  TRACE_TOOL=./build-werror/tools/ulayer_verify
fi
ASAN_OPTIONS=detect_leaks=1 "$TRACE_TOOL" --model googlenet --config pf \
  --trace-out trace_googlenet.json --metrics-out BENCH_trace.json
ASAN_OPTIONS=detect_leaks=1 "$TRACE_TOOL" --model googlenet --config pf \
  --faults "$FAULT_SPEC" --trace-out trace_googlenet_faults.json >/dev/null
rm -f trace_googlenet.json trace_googlenet_faults.json

echo "==> [10/13] distributed split inference: smoke + digest diff + bench"
# The net test suites run under both sanitizers; then ulayer_verify
# --net-smoke executes the same functional model clean and under the
# committed link-loss + worker-death spec at several node counts and CPU
# thread budgets (and across the ASan/TSan builds when sanitizers are on).
# The printed output digest must be byte-identical in every cell: recovery
# re-routes a lost worker's channel slice but never changes the bytes.
# ulayer_verify itself exits 1 on any N-series diagnostic.
NET_FAULT_SPEC="$(grep -v '^#' scripts/ci_net_faults.spec | tr -d '[:space:]')"
if [ "$SKIP_SANITIZE" -eq 0 ]; then
  ULAYER_CPU_THREADS=4 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan --output-on-failure -R 'net_test|net_wire_test'
  ULAYER_CPU_THREADS=4 \
    ctest --test-dir build-tsan --output-on-failure -R 'net_test|net_wire_test'
  NET_TOOL=./build-asan/tools/ulayer_verify
  NET_TOOL_ALT=./build-tsan/tools/ulayer_verify
  NET_BENCH=./build-asan/bench/net_bench
else
  NET_TOOL=./build-werror/tools/ulayer_verify
  NET_TOOL_ALT=./build-werror/tools/ulayer_verify
  NET_BENCH=./build-werror/bench/net_bench
fi
: > net_digests.txt
for nodes in 1 2 3; do
  for threads in 1 4; do
    ULAYER_CPU_THREADS="$threads" ASAN_OPTIONS=detect_leaks=1 \
      "$NET_TOOL" --net-smoke --net-nodes "$nodes" | grep '^net-smoke .*digest' >> net_digests.txt
    ULAYER_CPU_THREADS="$threads" ASAN_OPTIONS=detect_leaks=1 \
      "$NET_TOOL" --net-smoke --net-nodes "$nodes" --faults "$NET_FAULT_SPEC" \
      | grep '^net-smoke .*digest' >> net_digests.txt
  done
done
ULAYER_CPU_THREADS=4 "$NET_TOOL_ALT" --net-smoke --net-nodes 2 \
  --faults "$NET_FAULT_SPEC" | grep '^net-smoke .*digest' >> net_digests.txt
if [ "$(sort -u net_digests.txt | wc -l)" -ne 1 ]; then
  echo "distributed digest mismatch across node counts / thread budgets:" >&2
  cat net_digests.txt >&2
  exit 1
fi
echo "net digest identical across $(wc -l < net_digests.txt) runs"
rm -f net_digests.txt
ASAN_OPTIONS=detect_leaks=1 "$NET_BENCH" --quick --out BENCH_net.json

echo "==> [11/13] adaptation loop: tests under sanitizers + ramp smoke + bench"
# The closed adaptation loop (drift-fed predictor corrections, health-keyed
# plan cache, two-way throttle ratchet) runs its test suite under ASan and
# TSan, then drives the committed throttle ramp (scripts/ci_adapt.spec)
# through ulayer_verify --adapt. The printed ramp — per-run latencies,
# correction table, cache statistics, H-series verdicts — must be
# byte-identical across CPU thread budgets (the loop is timing-only; the
# thread budget only affects functional kernels). adapt_bench --quick
# regenerates BENCH_adapt.json and exits 1 if the adaptive runtime fails to
# beat the static one while throttled, fails to converge, or fails to
# return to the baseline plan.
ADAPT_SPEC="$(grep -v '^#' scripts/ci_adapt.spec | tr -d '[:space:]')"
if [ "$SKIP_SANITIZE" -eq 0 ]; then
  ULAYER_CPU_THREADS=4 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan --output-on-failure -R 'adapt_test'
  ULAYER_CPU_THREADS=4 \
    ctest --test-dir build-tsan --output-on-failure -R 'adapt_test'
  ADAPT_TOOL=./build-asan/tools/ulayer_verify
  ADAPT_BENCH=./build-asan/bench/adapt_bench
else
  ADAPT_TOOL=./build-werror/tools/ulayer_verify
  ADAPT_BENCH=./build-werror/bench/adapt_bench
fi
ULAYER_CPU_THREADS=1 ASAN_OPTIONS=detect_leaks=1 \
  "$ADAPT_TOOL" --adapt --config pf --faults "$ADAPT_SPEC" > adapt_ramp_t1.txt
ULAYER_CPU_THREADS=4 ASAN_OPTIONS=detect_leaks=1 \
  "$ADAPT_TOOL" --adapt --config pf --faults "$ADAPT_SPEC" > adapt_ramp_t4.txt
diff adapt_ramp_t1.txt adapt_ramp_t4.txt
rm -f adapt_ramp_t1.txt adapt_ramp_t4.txt
ASAN_OPTIONS=detect_leaks=1 "$ADAPT_BENCH" --quick --out BENCH_adapt.json

if command -v clang-format >/dev/null 2>&1; then
  echo "==> [12/13] clang-format check (.clang-format, check-only)"
  mapfile -t FMT_FILES < <(git ls-files '*.cc' '*.h')
  clang-format --dry-run -Werror "${FMT_FILES[@]}"
else
  echo "==> [12/13] clang-format not installed; skipping format check"
fi

if [ "$SKIP_TIDY" -eq 0 ]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> [13/13] clang-tidy over src/, bench/ and tools/"
    # build-werror exports compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS).
    mapfile -t SOURCES < <(git ls-files 'src/*.cc' 'bench/*.cc' 'tools/*.cc')
    clang-tidy -p build-werror --quiet "${SOURCES[@]}"
  else
    echo "==> [13/13] clang-tidy not installed; skipping lint stage"
  fi
else
  echo "==> [13/13] clang-tidy skipped (--skip-tidy)"
fi

echo "CI pipeline passed."
