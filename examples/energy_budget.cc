// Energy-budget planner: given a per-inference energy budget (mJ), pick the
// fastest execution mechanism that fits — the deployment question mobile
// vendors actually face (paper Section 7.3).
//
//   $ ./energy_budget [budget_mj]   (default 400 mJ)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "core/runtime.h"

using namespace ulayer;

namespace {

struct Mechanism {
  std::string name;
  double latency_ms;
  double energy_mj;
};

std::vector<Mechanism> Evaluate(const Model& m, const SocSpec& soc) {
  std::vector<Mechanism> out;
  const RunResult cpu = RunSingleProcessor(m, soc, ProcKind::kCpu, ExecConfig::AllQU8());
  out.push_back({"CPU-only (QUInt8)", cpu.latency_ms(), cpu.total_energy_mj});
  const RunResult gpu = RunSingleProcessor(m, soc, ProcKind::kGpu, ExecConfig::AllF16());
  out.push_back({"GPU-only (F16)", gpu.latency_ms(), gpu.total_energy_mj});
  const RunResult l2p = RunLayerToProcessor(m, soc, ExecConfig::AllQU8());
  out.push_back({"layer-to-processor", l2p.latency_ms(), l2p.total_energy_mj});
  ULayerRuntime rt(m, soc);
  const RunResult ul = rt.Run();
  out.push_back({"ulayer", ul.latency_ms(), ul.total_energy_mj});
  // Energy-tuned ulayer: same mechanisms, partitioner minimizes energy.
  ULayerRuntime::Options energy_opts;
  energy_opts.partitioner.objective = Partitioner::Objective::kEnergy;
  ULayerRuntime rt_e(m, soc, energy_opts);
  const RunResult ul_e = rt_e.Run();
  out.push_back({"ulayer (energy-tuned)", ul_e.latency_ms(), ul_e.total_energy_mj});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double budget_mj = argc > 1 ? std::atof(argv[1]) : 400.0;
  std::printf("per-inference energy budget: %.0f mJ\n", budget_mj);
  for (const SocSpec& soc : {MakeExynos7420(), MakeExynos7880()}) {
    std::printf("\n=== %s ===\n", soc.name.c_str());
    for (const Model& m : MakeEvaluationModels()) {
      const auto mechs = Evaluate(m, soc);
      const Mechanism* best = nullptr;
      for (const Mechanism& mech : mechs) {
        if (mech.energy_mj <= budget_mj &&
            (best == nullptr || mech.latency_ms < best->latency_ms)) {
          best = &mech;
        }
      }
      std::printf("%-16s ", m.name.c_str());
      if (best == nullptr) {
        double min_e = mechs[0].energy_mj;
        for (const Mechanism& mech : mechs) {
          min_e = std::min(min_e, mech.energy_mj);
        }
        std::printf("no mechanism fits (cheapest needs %.0f mJ)\n", min_e);
      } else {
        std::printf("-> %-20s %8.2f ms at %7.1f mJ\n", best->name.c_str(), best->latency_ms,
                    best->energy_mj);
      }
    }
  }
  std::printf("\n(ulayer typically wins: fastest within budget thanks to the\n"
              "latency reduction outweighing the two-processor power draw.)\n");
  return 0;
}
