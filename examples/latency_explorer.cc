// Latency explorer: sweep split ratios and mechanisms for one network to
// see *why* the partitioner picks what it picks — a debugging/tuning tool
// for bringing ulayer to a new SoC.
//
//   $ ./latency_explorer [vgg16|alexnet|googlenet|squeezenet|mobilenet|
//                          resnet18|resnet50|inceptionv3]
#include <cstdio>
#include <cstring>

#include "baselines/baselines.h"
#include "core/runtime.h"
#include "io/io.h"

using namespace ulayer;

namespace {

Model PickModel(const char* name) {
  if (name == nullptr || std::strcmp(name, "vgg16") == 0) {
    return MakeVgg16();
  }
  if (std::strcmp(name, "alexnet") == 0) {
    return MakeAlexNet();
  }
  if (std::strcmp(name, "googlenet") == 0) {
    return MakeGoogLeNet();
  }
  if (std::strcmp(name, "squeezenet") == 0) {
    return MakeSqueezeNetV11();
  }
  if (std::strcmp(name, "resnet18") == 0) {
    return MakeResNet18();
  }
  if (std::strcmp(name, "resnet50") == 0) {
    return MakeResNet50();
  }
  if (std::strcmp(name, "inceptionv3") == 0) {
    return MakeInceptionV3();
  }
  return MakeMobileNetV1();
}

// Runs the model with every layer forced to the same split ratio p.
double ForcedSplitUs(const Model& m, const SocSpec& soc, double p) {
  PreparedModel pm(m, ExecConfig::ProcessorFriendly());
  Executor ex(pm, soc);
  Plan plan;
  plan.nodes.resize(static_cast<size_t>(m.graph.size()));
  for (const Node& n : m.graph.nodes()) {
    NodeAssignment& a = plan.nodes[static_cast<size_t>(n.id)];
    const bool splittable = n.desc.kind == LayerKind::kConv ||
                            n.desc.kind == LayerKind::kDepthwiseConv ||
                            n.desc.kind == LayerKind::kFullyConnected ||
                            n.desc.kind == LayerKind::kPool;
    if (splittable && p > 0.0 && p < 1.0) {
      a = NodeAssignment{StepKind::kCooperative, ProcKind::kCpu, p};
    } else {
      a = NodeAssignment{StepKind::kSingle, p >= 0.5 ? ProcKind::kCpu : ProcKind::kGpu, 1.0};
    }
  }
  return ex.Run(plan).latency_us;
}

}  // namespace

int main(int argc, char** argv) {
  const Model m = PickModel(argc > 1 ? argv[1] : nullptr);
  std::printf("exploring %s\n", m.name.c_str());
  for (const SocSpec& soc : {MakeExynos7420(), MakeExynos7880()}) {
    std::printf("\n=== %s ===\n", soc.name.c_str());
    std::printf("uniform split sweep (p = CPU fraction of every layer):\n");
    for (const double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      std::printf("  p=%.2f -> %8.2f ms%s\n", p, ForcedSplitUs(m, soc, p) * 1e-3,
                  p == 0.0 ? "  (GPU-only)" : (p == 1.0 ? "  (CPU-only)" : ""));
    }
    ULayerRuntime rt(m, soc);
    const RunResult r = rt.Run();
    std::printf("per-layer partitioner (ulayer): %8.2f ms  "
                "(%.0f%% layers cooperative, %zu branch groups)\n",
                r.latency_ms(), rt.plan().CooperativeFraction() * 100.0,
                rt.plan().branch_plans.size());
    std::printf("%s", TraceToText(r, m.graph).c_str());

    // Show the first few per-layer decisions.
    std::printf("first decisions:\n");
    int shown = 0;
    for (const Node& n : m.graph.nodes()) {
      if (n.desc.kind == LayerKind::kInput) {
        continue;
      }
      const NodeAssignment& a = rt.plan().nodes[static_cast<size_t>(n.id)];
      const char* what = a.kind == StepKind::kCooperative ? "split"
                         : a.kind == StepKind::kBranch    ? "branch"
                                                          : "single";
      std::printf("  %-22s %-7s", n.desc.name.c_str(), what);
      if (a.kind == StepKind::kCooperative) {
        std::printf(" p=%.2f", a.cpu_fraction);
      } else {
        std::printf(" on %s", std::string(ProcKindName(a.proc)).c_str());
      }
      std::printf("\n");
      if (++shown >= 12) {
        std::printf("  ... (%d more layers)\n", m.graph.size() - shown - 1);
        break;
      }
    }
  }
  return 0;
}
