// Functional end-to-end example: a quantized image classifier running
// cooperatively on CPU+GPU, the paper's motivating mobile-vision scenario.
//
// Uses SqueezeNet v1.1 at 64x64 with synthetic weights so the bit-accurate
// kernels (QUInt8 integer path on the "CPU", on-the-fly F16 on the "GPU")
// finish quickly. Shows the full functional pipeline: calibration,
// quantization, cooperative execution, and agreement with the F32 reference.
#include <cstdio>

#include "core/reference.h"
#include "core/runtime.h"
#include "tensor/rng.h"

using namespace ulayer;

int main() {
  Model model = MakeSqueezeNetV11(1, 64);
  model.MaterializeWeights(/*seed=*/2024);
  const SocSpec soc = MakeExynos7420();
  ULayerRuntime runtime(model, soc);

  // Calibration pass: run a few representative inputs through the F32
  // reference to learn per-layer activation ranges (the "pre-trained
  // quantization information" of Section 4.2).
  std::vector<Tensor> calib;
  for (int i = 0; i < 4; ++i) {
    Tensor t(Shape(1, 3, 64, 64), DType::kF32);
    FillUniform(t, 500 + static_cast<uint64_t>(i), -1.0f, 1.0f);
    calib.push_back(std::move(t));
  }
  runtime.Calibrate(calib);
  std::printf("calibrated %s for QUInt8 storage\n", model.name.c_str());

  int agree = 0;
  const int kImages = 5;
  for (int i = 0; i < kImages; ++i) {
    Tensor image(Shape(1, 3, 64, 64), DType::kF32);
    FillUniform(image, 9000 + static_cast<uint64_t>(i), -1.0f, 1.0f);

    const RunResult r = runtime.Run(&image);
    const int64_t cls = Argmax(*r.output);
    const float conf = r.output->Data<float>()[cls];

    const auto ref = ForwardF32(model, image);
    const int64_t ref_cls = Argmax(ref.back());
    agree += cls == ref_cls ? 1 : 0;

    std::printf("image %d: class %4lld (p=%.3f)  F32 says %4lld  |  %6.2f ms  %6.1f mJ\n", i,
                static_cast<long long>(cls), static_cast<double>(conf),
                static_cast<long long>(ref_cls),
                r.latency_ms(), r.total_energy_mj);
  }
  std::printf("quantized-vs-F32 agreement: %d/%d\n", agree, kImages);
  return 0;
}
