// Bring-your-own-network: author a model in the ulayer text format, load
// it, and let the runtime plan and execute it on both reference SoCs.
//
//   $ ./custom_network [path/to/graph.txt]
//
// Without an argument, a small branchy detection-style backbone written
// inline is used, and its round-tripped text form is printed.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/runtime.h"
#include "io/io.h"

using namespace ulayer;

namespace {

// A small hand-written backbone with one Fire-style branch group, the kind
// of custom network a product team would iterate on.
constexpr char kDefaultGraph[] = R"(ulayer-graph v1
input camera 1 3 96 96
conv stem 0 32 3 3 2 2 1 1 1
pool pool1 1 max 3 2 0 1
conv squeeze 2 16 1 1 1 1 0 0 1
conv expand1x1 3 64 1 1 1 1 0 0 1
conv expand3x3 3 64 3 3 1 1 1 1 1
concat fire_out 2 4 5
conv head 6 128 3 3 2 2 1 1 1
gavgpool gap 7
fc logits 8 20 0
softmax prob 9
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    text = ss.str();
  } else {
    text = kDefaultGraph;
  }

  Model m;
  m.name = argc > 1 ? argv[1] : "custom-backbone";
  try {
    m.graph = GraphFromText(text);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  std::printf("loaded %s: %d nodes, %lld parameters\n", m.name.c_str(), m.graph.size(),
              static_cast<long long>(m.ParameterCount()));

  for (const SocSpec& soc : {MakeExynos7420(), MakeExynos7880()}) {
    ULayerRuntime rt(m, soc);
    const RunResult r = rt.Run();
    std::printf("\n=== %s ===\n", soc.name.c_str());
    std::printf("latency %.3f ms, energy %.2f mJ, %d syncs\n", r.latency_ms(), r.total_energy_mj,
                r.sync_count);
    std::printf("%s", PlanToText(rt.plan(), m.graph).c_str());
  }

  if (argc <= 1) {
    std::printf("\n--- round-tripped graph text ---\n%s", GraphToText(m.graph).c_str());
  }
  return 0;
}
