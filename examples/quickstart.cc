// Quickstart: plan and execute GoogLeNet with ulayer on a simulated
// high-end SoC, and compare against the single-processor baselines.
//
//   $ ./quickstart
//
// Walks through the three steps of the public API:
//  1. build (or load) a Model,
//  2. construct a ULayerRuntime for a target SoC,
//  3. Run() — simulate-only here; pass an input tensor for functional runs.
#include <cstdio>

#include "baselines/baselines.h"
#include "core/runtime.h"

using namespace ulayer;

int main() {
  // 1. A network from the model zoo (build your own with ulayer::Graph).
  const Model model = MakeGoogLeNet();
  std::printf("network: %s (%lld params, %d layers)\n", model.name.c_str(),
              static_cast<long long>(model.ParameterCount()), model.graph.size());

  // 2. Target SoC. MakeExynos7420() is the paper's high-end phone; you can
  //    also describe your own silicon by filling in a SocSpec.
  const SocSpec soc = MakeExynos7420();
  ULayerRuntime runtime(model, soc);

  // Inspect the plan the NN partitioner chose.
  const Plan& plan = runtime.plan();
  std::printf("plan: %.0f%% of layers run cooperatively, %zu branch groups "
              "distributed\n",
              plan.CooperativeFraction() * 100.0, plan.branch_plans.size());

  // 3. Execute (simulate-only: latency and energy, no tensor math).
  const RunResult r = runtime.Run();
  std::printf("ulayer:            %7.2f ms   %7.1f mJ   (%d CPU-GPU syncs)\n", r.latency_ms(),
              r.total_energy_mj, r.sync_count);

  // Baselines for context.
  const RunResult cpu = RunSingleProcessor(model, soc, ProcKind::kCpu, ExecConfig::AllQU8());
  const RunResult gpu = RunSingleProcessor(model, soc, ProcKind::kGpu, ExecConfig::AllF16());
  const RunResult l2p = RunLayerToProcessor(model, soc, ExecConfig::AllQU8());
  std::printf("CPU-only (QUInt8): %7.2f ms   %7.1f mJ\n", cpu.latency_ms(), cpu.total_energy_mj);
  std::printf("GPU-only (F16):    %7.2f ms   %7.1f mJ\n", gpu.latency_ms(), gpu.total_energy_mj);
  std::printf("layer-to-proc:     %7.2f ms   %7.1f mJ\n", l2p.latency_ms(), l2p.total_energy_mj);
  std::printf("speed improvement over layer-to-processor: %+.1f%%\n",
              (l2p.latency_us / r.latency_us - 1.0) * 100.0);
  return 0;
}
